package msg

// The hand-rolled wire codec: every message type carries explicit
// MarshalWire/UnmarshalWire methods over internal/wire's primitives,
// and wireTypes below is the type registry — the wire-codec counterpart
// of Register's gob list. The TCP transport frames one envelope
// (tag byte, sender id, message body) per message; see DESIGN.md's
// "Wire format" section for the layout and internal/wire for the
// primitive encodings.
//
// Adding a message type means: a new tag constant (append only — tags
// are wire compatibility), the two methods, and one wireTypes row. The
// codec tests enforce that the gob list and the wire registry stay in
// sync, and that both codecs decode every type to equal structs.

import (
	"fmt"

	"consensusinside/internal/wire"
)

// Codec selects how the TCP transport encodes messages.
type Codec int

// Codecs. The zero value lets config layers default to CodecWire.
const (
	// CodecWire is the hand-rolled binary codec (the default): explicit
	// per-type encoders, varint integers, length-prefixed frames.
	CodecWire Codec = iota + 1
	// CodecGob is the encoding/gob baseline the repository started with,
	// kept selectable as the codec-sweep ablation.
	CodecGob
)

// String implements fmt.Stringer for knob tables and benchmarks.
func (c Codec) String() string {
	switch c {
	case CodecWire:
		return "wire"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// Wire type tags. One byte, starting at 1 (0 marks a corrupt frame);
// append-only, since a tag is the type's identity on the wire. Tag 255
// is reserved for the transport's hello handshake frame.
const (
	tagClientRequest byte = iota + 1
	tagClientReply
	tagClientReplyBatch
	tagPrepareRequest
	tagPrepareResponse
	tagAbandon
	tagAcceptRequest
	tagLearn
	tagUtilPrepare
	tagUtilPromise
	tagUtilAccept
	tagUtilAccepted
	tagUtilNack
	tagMPPrepare
	tagMPPromise
	tagMPAccept
	tagMPLearn
	tagMPNack
	tagTPCPrepare
	tagTPCAck
	tagTPCCommit
	tagTPCCommitAck
	tagTPCRollback
	tagMencAccept
	tagMencLearn
	tagMencSkip
	tagBPPrepare
	tagBPPromise
	tagBPAccept
	tagBPAccepted
	tagBPNack
	tagCatchupRequest
	tagSnapshotChunk
	tagCatchupEntries
	tagReadRequest
	tagReadReply
	tagReadReplyBatch
	tagReadIndexRequest
	tagReadIndexAck
)

// HelloTag is the reserved frame tag for the transport's connection
// handshake; no message type may claim it.
const HelloTag byte = 0xFF

// wireTypes is the wire codec's type registry: tag → decoder. It is the
// one list to extend for a new message type (the wire counterpart of
// the gob registrations in Register).
var wireTypes = []struct {
	tag byte
	dec func(d *wire.Decoder) Message
}{
	{tagClientRequest, func(d *wire.Decoder) Message { var m ClientRequest; m.UnmarshalWire(d); return m }},
	{tagClientReply, func(d *wire.Decoder) Message { var m ClientReply; m.UnmarshalWire(d); return m }},
	{tagClientReplyBatch, func(d *wire.Decoder) Message { var m ClientReplyBatch; m.UnmarshalWire(d); return m }},
	{tagPrepareRequest, func(d *wire.Decoder) Message { var m PrepareRequest; m.UnmarshalWire(d); return m }},
	{tagPrepareResponse, func(d *wire.Decoder) Message { var m PrepareResponse; m.UnmarshalWire(d); return m }},
	{tagAbandon, func(d *wire.Decoder) Message { var m Abandon; m.UnmarshalWire(d); return m }},
	{tagAcceptRequest, func(d *wire.Decoder) Message { var m AcceptRequest; m.UnmarshalWire(d); return m }},
	{tagLearn, func(d *wire.Decoder) Message { var m Learn; m.UnmarshalWire(d); return m }},
	{tagUtilPrepare, func(d *wire.Decoder) Message { var m UtilPrepare; m.UnmarshalWire(d); return m }},
	{tagUtilPromise, func(d *wire.Decoder) Message { var m UtilPromise; m.UnmarshalWire(d); return m }},
	{tagUtilAccept, func(d *wire.Decoder) Message { var m UtilAccept; m.UnmarshalWire(d); return m }},
	{tagUtilAccepted, func(d *wire.Decoder) Message { var m UtilAccepted; m.UnmarshalWire(d); return m }},
	{tagUtilNack, func(d *wire.Decoder) Message { var m UtilNack; m.UnmarshalWire(d); return m }},
	{tagMPPrepare, func(d *wire.Decoder) Message { var m MPPrepare; m.UnmarshalWire(d); return m }},
	{tagMPPromise, func(d *wire.Decoder) Message { var m MPPromise; m.UnmarshalWire(d); return m }},
	{tagMPAccept, func(d *wire.Decoder) Message { var m MPAccept; m.UnmarshalWire(d); return m }},
	{tagMPLearn, func(d *wire.Decoder) Message { var m MPLearn; m.UnmarshalWire(d); return m }},
	{tagMPNack, func(d *wire.Decoder) Message { var m MPNack; m.UnmarshalWire(d); return m }},
	{tagTPCPrepare, func(d *wire.Decoder) Message { var m TPCPrepare; m.UnmarshalWire(d); return m }},
	{tagTPCAck, func(d *wire.Decoder) Message { var m TPCAck; m.UnmarshalWire(d); return m }},
	{tagTPCCommit, func(d *wire.Decoder) Message { var m TPCCommit; m.UnmarshalWire(d); return m }},
	{tagTPCCommitAck, func(d *wire.Decoder) Message { var m TPCCommitAck; m.UnmarshalWire(d); return m }},
	{tagTPCRollback, func(d *wire.Decoder) Message { var m TPCRollback; m.UnmarshalWire(d); return m }},
	{tagMencAccept, func(d *wire.Decoder) Message { var m MencAccept; m.UnmarshalWire(d); return m }},
	{tagMencLearn, func(d *wire.Decoder) Message { var m MencLearn; m.UnmarshalWire(d); return m }},
	{tagMencSkip, func(d *wire.Decoder) Message { var m MencSkip; m.UnmarshalWire(d); return m }},
	{tagBPPrepare, func(d *wire.Decoder) Message { var m BPPrepare; m.UnmarshalWire(d); return m }},
	{tagBPPromise, func(d *wire.Decoder) Message { var m BPPromise; m.UnmarshalWire(d); return m }},
	{tagBPAccept, func(d *wire.Decoder) Message { var m BPAccept; m.UnmarshalWire(d); return m }},
	{tagBPAccepted, func(d *wire.Decoder) Message { var m BPAccepted; m.UnmarshalWire(d); return m }},
	{tagBPNack, func(d *wire.Decoder) Message { var m BPNack; m.UnmarshalWire(d); return m }},
	{tagCatchupRequest, func(d *wire.Decoder) Message { var m CatchupRequest; m.UnmarshalWire(d); return m }},
	{tagSnapshotChunk, func(d *wire.Decoder) Message { var m SnapshotChunk; m.UnmarshalWire(d); return m }},
	{tagCatchupEntries, func(d *wire.Decoder) Message { var m CatchupEntries; m.UnmarshalWire(d); return m }},
	{tagReadRequest, func(d *wire.Decoder) Message { var m ReadRequest; m.UnmarshalWire(d); return m }},
	{tagReadReply, func(d *wire.Decoder) Message { var m ReadReply; m.UnmarshalWire(d); return m }},
	{tagReadReplyBatch, func(d *wire.Decoder) Message { var m ReadReplyBatch; m.UnmarshalWire(d); return m }},
	{tagReadIndexRequest, func(d *wire.Decoder) Message { var m ReadIndexRequest; m.UnmarshalWire(d); return m }},
	{tagReadIndexAck, func(d *wire.Decoder) Message { var m ReadIndexAck; m.UnmarshalWire(d); return m }},
}

// wireDec indexes wireTypes by tag for the decode hot path.
var wireDec [256]func(d *wire.Decoder) Message

func init() {
	for _, t := range wireTypes {
		if t.tag == 0 || t.tag == HelloTag {
			panic(fmt.Sprintf("msg: wire tag %d is reserved", t.tag))
		}
		if wireDec[t.tag] != nil {
			panic(fmt.Sprintf("msg: duplicate wire tag %d", t.tag))
		}
		wireDec[t.tag] = t.dec
	}
}

// wireTagOf maps a concrete message to its tag. A type switch keeps
// the mapping explicit and allocation-free on the send path.
func wireTagOf(m Message) (byte, bool) {
	switch m.(type) {
	case ClientRequest:
		return tagClientRequest, true
	case ClientReply:
		return tagClientReply, true
	case ClientReplyBatch:
		return tagClientReplyBatch, true
	case PrepareRequest:
		return tagPrepareRequest, true
	case PrepareResponse:
		return tagPrepareResponse, true
	case Abandon:
		return tagAbandon, true
	case AcceptRequest:
		return tagAcceptRequest, true
	case Learn:
		return tagLearn, true
	case UtilPrepare:
		return tagUtilPrepare, true
	case UtilPromise:
		return tagUtilPromise, true
	case UtilAccept:
		return tagUtilAccept, true
	case UtilAccepted:
		return tagUtilAccepted, true
	case UtilNack:
		return tagUtilNack, true
	case MPPrepare:
		return tagMPPrepare, true
	case MPPromise:
		return tagMPPromise, true
	case MPAccept:
		return tagMPAccept, true
	case MPLearn:
		return tagMPLearn, true
	case MPNack:
		return tagMPNack, true
	case TPCPrepare:
		return tagTPCPrepare, true
	case TPCAck:
		return tagTPCAck, true
	case TPCCommit:
		return tagTPCCommit, true
	case TPCCommitAck:
		return tagTPCCommitAck, true
	case TPCRollback:
		return tagTPCRollback, true
	case MencAccept:
		return tagMencAccept, true
	case MencLearn:
		return tagMencLearn, true
	case MencSkip:
		return tagMencSkip, true
	case BPPrepare:
		return tagBPPrepare, true
	case BPPromise:
		return tagBPPromise, true
	case BPAccept:
		return tagBPAccept, true
	case BPAccepted:
		return tagBPAccepted, true
	case BPNack:
		return tagBPNack, true
	case CatchupRequest:
		return tagCatchupRequest, true
	case SnapshotChunk:
		return tagSnapshotChunk, true
	case CatchupEntries:
		return tagCatchupEntries, true
	case ReadRequest:
		return tagReadRequest, true
	case ReadReply:
		return tagReadReply, true
	case ReadReplyBatch:
		return tagReadReplyBatch, true
	case ReadIndexRequest:
		return tagReadIndexRequest, true
	case ReadIndexAck:
		return tagReadIndexAck, true
	default:
		return 0, false
	}
}

// WireMarshaler is implemented by every message type: MarshalWire
// appends the type's body encoding (no tag, no length) to b.
type WireMarshaler interface {
	MarshalWire(b []byte) []byte
}

// AppendEnvelope appends the wire encoding of message m from sender
// from: the type tag, the sender id, then the body. The transport wraps
// the result in a length-prefixed frame. It fails on message types
// outside the registry (a programming error caught by the codec tests).
func AppendEnvelope(b []byte, from NodeID, m Message) ([]byte, error) {
	tag, ok := wireTagOf(m)
	if !ok {
		return b, fmt.Errorf("msg: no wire tag for %T", m)
	}
	b = append(b, tag)
	b = wire.AppendVarint(b, int64(from))
	return m.(WireMarshaler).MarshalWire(b), nil
}

// DecodeEnvelope decodes one AppendEnvelope payload. It is strict: an
// unknown tag, a truncated body, or trailing bytes all fail — a corrupt
// frame means a corrupt stream, and the transport drops the connection.
// The returned message copies everything it needs; the caller may reuse
// payload immediately.
func DecodeEnvelope(payload []byte) (NodeID, Message, error) {
	d := wire.NewDecoder(payload)
	tag := d.Byte()
	from := NodeID(d.Varint())
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("msg: envelope header: %w", err)
	}
	dec := wireDec[tag]
	if dec == nil {
		return 0, nil, fmt.Errorf("msg: unknown wire tag %d", tag)
	}
	m := dec(&d)
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("msg: decode %s: %w", m.Kind(), err)
	}
	if d.Remaining() != 0 {
		return 0, nil, fmt.Errorf("msg: %d trailing bytes after %s", d.Remaining(), m.Kind())
	}
	return from, m, nil
}

// ---------------------------------------------------------------------------
// Shared field encoders
// ---------------------------------------------------------------------------

func appendCommand(b []byte, c Command) []byte {
	b = wire.AppendVarint(b, int64(c.Op))
	b = wire.AppendString(b, c.Key)
	return wire.AppendString(b, c.Val)
}

func decodeCommand(d *wire.Decoder) Command {
	return Command{
		Op:  Op(d.Varint()),
		Key: d.String(),
		Val: d.String(),
	}
}

func appendBatch(b []byte, batch []BatchEntry) []byte {
	b = wire.AppendUvarint(b, uint64(len(batch)))
	for _, e := range batch {
		b = wire.AppendUvarint(b, e.Seq)
		b = appendCommand(b, e.Cmd)
	}
	return b
}

// decodeSliceCap bounds the capacity pre-allocated for a decoded slice.
// The count itself is already validated against the remaining input
// (wire.Decoder.SliceLen), but one input byte can claim a much larger
// in-memory element, so a hostile count could still amplify a 16 MB
// frame into gigabytes if trusted for the initial make(). Growing by
// append beyond this cap keeps memory proportional to input actually
// decoded; legitimate slices (batches bounded by the pipeline window,
// learn backlogs) rarely exceed it anyway.
const decodeSliceCap = 4096

// decodeBatch returns nil for an empty batch — matching gob, which does
// not distinguish nil from empty, so the two codecs decode to equal
// structs.
func decodeBatch(d *wire.Decoder) []BatchEntry {
	n := d.SliceLen()
	if n == 0 {
		return nil
	}
	batch := make([]BatchEntry, 0, min(n, decodeSliceCap))
	for i := 0; i < n; i++ {
		batch = append(batch, BatchEntry{Seq: d.Uvarint(), Cmd: decodeCommand(d)})
		if d.Err() != nil {
			return nil
		}
	}
	return batch
}

func appendValue(b []byte, v Value) []byte {
	b = wire.AppendVarint(b, int64(v.Client))
	b = wire.AppendUvarint(b, v.Seq)
	b = appendCommand(b, v.Cmd)
	b = wire.AppendUvarint(b, v.Ack)
	return appendBatch(b, v.Batch)
}

func decodeValue(d *wire.Decoder) Value {
	return Value{
		Client: NodeID(d.Varint()),
		Seq:    d.Uvarint(),
		Cmd:    decodeCommand(d),
		Ack:    d.Uvarint(),
		Batch:  decodeBatch(d),
	}
}

func appendProposal(b []byte, p Proposal) []byte {
	b = wire.AppendVarint(b, p.Instance)
	b = wire.AppendUvarint(b, p.PN)
	return appendValue(b, p.Value)
}

func decodeProposal(d *wire.Decoder) Proposal {
	return Proposal{
		Instance: d.Varint(),
		PN:       d.Uvarint(),
		Value:    decodeValue(d),
	}
}

func appendProposals(b []byte, ps []Proposal) []byte {
	b = wire.AppendUvarint(b, uint64(len(ps)))
	for _, p := range ps {
		b = appendProposal(b, p)
	}
	return b
}

func decodeProposals(d *wire.Decoder) []Proposal {
	n := d.SliceLen()
	if n == 0 {
		return nil
	}
	ps := make([]Proposal, 0, min(n, decodeSliceCap))
	for i := 0; i < n; i++ {
		ps = append(ps, decodeProposal(d))
		if d.Err() != nil {
			return nil
		}
	}
	return ps
}

func appendUtilEntry(b []byte, e UtilEntry) []byte {
	b = wire.AppendVarint(b, int64(e.Type))
	b = wire.AppendVarint(b, int64(e.Leader))
	b = wire.AppendVarint(b, int64(e.Acceptor))
	b = appendProposals(b, e.Uncommitted)
	return wire.AppendVarint(b, e.Frontier)
}

func decodeUtilEntry(d *wire.Decoder) UtilEntry {
	return UtilEntry{
		Type:        UtilEntryType(d.Varint()),
		Leader:      NodeID(d.Varint()),
		Acceptor:    NodeID(d.Varint()),
		Uncommitted: decodeProposals(d),
		Frontier:    d.Varint(),
	}
}

// ---------------------------------------------------------------------------
// Client traffic
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
// ClientRequest is field-for-field convertible to Value, so it shares
// Value's encoder — one layout to maintain when either grows a field
// (the conversion stops compiling if they diverge).
func (m ClientRequest) MarshalWire(b []byte) []byte {
	return appendValue(b, Value(m))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ClientRequest) UnmarshalWire(d *wire.Decoder) {
	*m = ClientRequest(decodeValue(d))
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ClientReply) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Seq)
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendBool(b, m.OK)
	b = wire.AppendString(b, m.Result)
	return wire.AppendVarint(b, int64(m.Redirect))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ClientReply) UnmarshalWire(d *wire.Decoder) {
	m.Seq = d.Uvarint()
	m.Instance = d.Varint()
	m.OK = d.Bool()
	m.Result = d.String()
	m.Redirect = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ClientReplyBatch) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Replies)))
	for _, r := range m.Replies {
		b = r.MarshalWire(b)
	}
	return b
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ClientReplyBatch) UnmarshalWire(d *wire.Decoder) {
	n := d.SliceLen()
	if n == 0 {
		m.Replies = nil
		return
	}
	m.Replies = make([]ClientReply, 0, min(n, decodeSliceCap))
	for i := 0; i < n; i++ {
		var r ClientReply
		r.UnmarshalWire(d)
		if d.Err() != nil {
			m.Replies = nil
			return
		}
		m.Replies = append(m.Replies, r)
	}
}

// ---------------------------------------------------------------------------
// 1Paxos
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m PrepareRequest) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.PN)
	b = wire.AppendBool(b, m.MustBeFresh)
	return wire.AppendVarint(b, m.From)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *PrepareRequest) UnmarshalWire(d *wire.Decoder) {
	m.PN = d.Uvarint()
	m.MustBeFresh = d.Bool()
	m.From = d.Varint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m PrepareResponse) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(m.Acceptor))
	b = wire.AppendUvarint(b, m.PN)
	b = appendProposals(b, m.Accepted)
	return wire.AppendVarint(b, m.Floor)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *PrepareResponse) UnmarshalWire(d *wire.Decoder) {
	m.Acceptor = NodeID(d.Varint())
	m.PN = d.Uvarint()
	m.Accepted = decodeProposals(d)
	m.Floor = d.Varint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m Abandon) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.HPN)
	b = wire.AppendBool(b, m.FreshMismatch)
	return wire.AppendBool(b, m.IamFresh)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *Abandon) UnmarshalWire(d *wire.Decoder) {
	m.HPN = d.Uvarint()
	m.FreshMismatch = d.Bool()
	m.IamFresh = d.Bool()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m AcceptRequest) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *AcceptRequest) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m Learn) MarshalWire(b []byte) []byte {
	return appendProposals(b, m.Entries)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *Learn) UnmarshalWire(d *wire.Decoder) {
	m.Entries = decodeProposals(d)
}

// ---------------------------------------------------------------------------
// PaxosUtility
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m UtilPrepare) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Slot)
	return wire.AppendUvarint(b, m.PN)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *UtilPrepare) UnmarshalWire(d *wire.Decoder) {
	m.Slot = d.Varint()
	m.PN = d.Uvarint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m UtilPromise) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Slot)
	b = wire.AppendUvarint(b, m.PN)
	b = wire.AppendUvarint(b, m.AcceptedPN)
	return appendUtilEntry(b, m.Accepted)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *UtilPromise) UnmarshalWire(d *wire.Decoder) {
	m.Slot = d.Varint()
	m.PN = d.Uvarint()
	m.AcceptedPN = d.Uvarint()
	m.Accepted = decodeUtilEntry(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m UtilAccept) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Slot)
	b = wire.AppendUvarint(b, m.PN)
	return appendUtilEntry(b, m.Entry)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *UtilAccept) UnmarshalWire(d *wire.Decoder) {
	m.Slot = d.Varint()
	m.PN = d.Uvarint()
	m.Entry = decodeUtilEntry(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m UtilAccepted) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Slot)
	b = wire.AppendUvarint(b, m.PN)
	b = appendUtilEntry(b, m.Entry)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *UtilAccepted) UnmarshalWire(d *wire.Decoder) {
	m.Slot = d.Varint()
	m.PN = d.Uvarint()
	m.Entry = decodeUtilEntry(d)
	m.From = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m UtilNack) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Slot)
	return wire.AppendUvarint(b, m.PN)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *UtilNack) UnmarshalWire(d *wire.Decoder) {
	m.Slot = d.Varint()
	m.PN = d.Uvarint()
}

// ---------------------------------------------------------------------------
// Collapsed Multi-Paxos
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MPPrepare) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.PN)
	return wire.AppendVarint(b, m.FromInstance)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MPPrepare) UnmarshalWire(d *wire.Decoder) {
	m.PN = d.Uvarint()
	m.FromInstance = d.Varint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MPPromise) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.PN)
	b = wire.AppendVarint(b, int64(m.From))
	b = appendProposals(b, m.Accepted)
	return wire.AppendVarint(b, m.Floor)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MPPromise) UnmarshalWire(d *wire.Decoder) {
	m.PN = d.Uvarint()
	m.From = NodeID(d.Varint())
	m.Accepted = decodeProposals(d)
	m.Floor = d.Varint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MPAccept) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MPAccept) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MPLearn) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	b = appendValue(b, m.Value)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MPLearn) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
	m.From = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MPNack) MarshalWire(b []byte) []byte {
	return wire.AppendUvarint(b, m.PN)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MPNack) UnmarshalWire(d *wire.Decoder) {
	m.PN = d.Uvarint()
}

// ---------------------------------------------------------------------------
// 2PC
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m TPCPrepare) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.TxID)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *TPCPrepare) UnmarshalWire(d *wire.Decoder) {
	m.TxID = d.Varint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m TPCAck) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.TxID)
	b = wire.AppendVarint(b, int64(m.From))
	return wire.AppendBool(b, m.OK)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *TPCAck) UnmarshalWire(d *wire.Decoder) {
	m.TxID = d.Varint()
	m.From = NodeID(d.Varint())
	m.OK = d.Bool()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m TPCCommit) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.TxID)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *TPCCommit) UnmarshalWire(d *wire.Decoder) {
	m.TxID = d.Varint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m TPCCommitAck) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.TxID)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *TPCCommitAck) UnmarshalWire(d *wire.Decoder) {
	m.TxID = d.Varint()
	m.From = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m TPCRollback) MarshalWire(b []byte) []byte {
	return wire.AppendVarint(b, m.TxID)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *TPCRollback) UnmarshalWire(d *wire.Decoder) {
	m.TxID = d.Varint()
}

// ---------------------------------------------------------------------------
// Mencius
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MencAccept) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MencAccept) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MencLearn) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = appendValue(b, m.Value)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MencLearn) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.Value = decodeValue(d)
	m.From = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m MencSkip) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.FromInstance)
	b = wire.AppendVarint(b, m.ToInstance)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *MencSkip) UnmarshalWire(d *wire.Decoder) {
	m.FromInstance = d.Varint()
	m.ToInstance = d.Varint()
	m.From = NodeID(d.Varint())
}

// ---------------------------------------------------------------------------
// Basic Paxos
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m BPPrepare) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	return wire.AppendUvarint(b, m.PN)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *BPPrepare) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m BPPromise) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	b = wire.AppendVarint(b, int64(m.From))
	b = wire.AppendUvarint(b, m.AcceptedPN)
	return appendValue(b, m.Accepted)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *BPPromise) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.From = NodeID(d.Varint())
	m.AcceptedPN = d.Uvarint()
	m.Accepted = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m BPAccept) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	return appendValue(b, m.Value)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *BPAccept) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m BPAccepted) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	b = wire.AppendUvarint(b, m.PN)
	b = appendValue(b, m.Value)
	return wire.AppendVarint(b, int64(m.From))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *BPAccepted) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
	m.Value = decodeValue(d)
	m.From = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m BPNack) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Instance)
	return wire.AppendUvarint(b, m.PN)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *BPNack) UnmarshalWire(d *wire.Decoder) {
	m.Instance = d.Varint()
	m.PN = d.Uvarint()
}

// ---------------------------------------------------------------------------
// Snapshot catch-up
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m CatchupRequest) MarshalWire(b []byte) []byte {
	return wire.AppendVarint(b, m.From)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *CatchupRequest) UnmarshalWire(d *wire.Decoder) {
	m.From = d.Varint()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m SnapshotChunk) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, m.Seq)
	b = wire.AppendBool(b, m.Last)
	return wire.AppendBytes(b, m.Data)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *SnapshotChunk) UnmarshalWire(d *wire.Decoder) {
	m.Seq = d.Varint()
	m.Last = d.Bool()
	m.Data = d.Bytes()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m CatchupEntries) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = wire.AppendVarint(b, e.Instance)
		b = appendValue(b, e.Value)
	}
	return wire.AppendBool(b, m.Done)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *CatchupEntries) UnmarshalWire(d *wire.Decoder) {
	n := d.SliceLen()
	if n > 0 {
		m.Entries = make([]Decided, 0, min(n, decodeSliceCap))
		for i := 0; i < n; i++ {
			m.Entries = append(m.Entries, Decided{Instance: d.Varint(), Value: decodeValue(d)})
			if d.Err() != nil {
				m.Entries = nil
				break
			}
		}
	}
	m.Done = d.Bool()
}

// ---------------------------------------------------------------------------
// Read fast path
// ---------------------------------------------------------------------------

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ReadRequest) MarshalWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(m.Client))
	b = wire.AppendVarint(b, int64(m.Mode))
	return appendBatch(b, m.Entries)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ReadRequest) UnmarshalWire(d *wire.Decoder) {
	m.Client = NodeID(d.Varint())
	m.Mode = int(d.Varint())
	m.Entries = decodeBatch(d)
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ReadReply) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Seq)
	b = wire.AppendBool(b, m.OK)
	b = wire.AppendString(b, m.Result)
	return wire.AppendVarint(b, int64(m.Redirect))
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ReadReply) UnmarshalWire(d *wire.Decoder) {
	m.Seq = d.Uvarint()
	m.OK = d.Bool()
	m.Result = d.String()
	m.Redirect = NodeID(d.Varint())
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ReadReplyBatch) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Replies)))
	for _, r := range m.Replies {
		b = r.MarshalWire(b)
	}
	return b
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ReadReplyBatch) UnmarshalWire(d *wire.Decoder) {
	n := d.SliceLen()
	if n == 0 {
		m.Replies = nil
		return
	}
	m.Replies = make([]ReadReply, 0, min(n, decodeSliceCap))
	for i := 0; i < n; i++ {
		var r ReadReply
		r.UnmarshalWire(d)
		if d.Err() != nil {
			m.Replies = nil
			return
		}
		m.Replies = append(m.Replies, r)
	}
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ReadIndexRequest) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Round)
	return wire.AppendBool(b, m.Lease)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ReadIndexRequest) UnmarshalWire(d *wire.Decoder) {
	m.Round = d.Uvarint()
	m.Lease = d.Bool()
}

// MarshalWire appends the message body (no tag); see AppendEnvelope.
func (m ReadIndexAck) MarshalWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Round)
	b = wire.AppendBool(b, m.OK)
	b = wire.AppendVarint(b, m.Frontier)
	return wire.AppendVarint(b, m.Hold)
}

// UnmarshalWire decodes the MarshalWire body; errors stick to d.
func (m *ReadIndexAck) UnmarshalWire(d *wire.Decoder) {
	m.Round = d.Uvarint()
	m.OK = d.Bool()
	m.Frontier = d.Varint()
	m.Hold = d.Varint()
}
