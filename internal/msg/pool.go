package msg

import "sync"

// Reply-slice pooling for the steady-state hot path.
//
// Every committed batch makes the applying replica build a
// []ClientReply (and the read path a []ReadReply) just long enough to
// wrap into one message; at six-figure op rates those short-lived
// slices dominate the allocation profile. The pools below recycle the
// backing arrays under a strict ownership discipline:
//
//   - The producer obtains a slice with GetReplies/GetReadReplies,
//     appends into it, and wraps it with WrapReplies/WrapReadReplies.
//   - If the wrapped message is a *batch*, the message now owns the
//     backing array: the producer must forget the slice (set it nil)
//     and the CONSUMER recycles it with RecycleReplies/RecycleReadReplies
//     once it has copied what it needs out.
//   - If the wrap produced nil (no replies) or a bare single reply
//     (copied by value into the message), the producer still owns the
//     array and returns it with PutReplies/PutReadReplies.
//
// Consumers may only recycle batches they are the sole receiver of.
// The in-proc runtime and the TCP transport both deliver each message
// exactly once, so the KV bridge recycles; the simulated runtime can
// duplicate messages under fault schedules, so sim-side consumers
// (workload clients, scenario harnesses) must NOT recycle — there the
// arrays simply fall to the garbage collector, which is the pre-pool
// behavior.
//
// Put zeroes the in-use prefix so pooled arrays never pin result
// strings against the GC; Get hands out a zeroed, length-0 slice.

// slicePool recycles slices of T. Two sync.Pools cooperate so the
// steady state allocates nothing at all: `full` holds pointers to
// usable backing arrays, `empty` holds the pointer cells themselves
// between uses (a bare sync.Pool.Put of a slice value would box the
// header on every call).
type slicePool[T any] struct {
	full  sync.Pool // *[]T with a usable backing array
	empty sync.Pool // *[]T spare holders (slice is nil)
}

func (p *slicePool[T]) get(n int) []T {
	if sp, _ := p.full.Get().(*[]T); sp != nil {
		s := *sp
		*sp = nil
		p.empty.Put(sp)
		if cap(s) >= n {
			return s[:0]
		}
	}
	if n < 16 {
		n = 16
	}
	return make([]T, 0, n)
}

func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	var zero T
	for i := range s {
		s[i] = zero
	}
	sp, _ := p.empty.Get().(*[]T)
	if sp == nil {
		sp = new([]T)
	}
	*sp = s[:0]
	p.full.Put(sp)
}

var (
	clientReplies slicePool[ClientReply]
	readReplies   slicePool[ReadReply]
)

// GetReplies returns a zeroed, length-0 reply slice with capacity for
// at least n replies, drawn from the pool when possible.
func GetReplies(n int) []ClientReply { return clientReplies.get(n) }

// PutReplies returns a reply slice to the pool. Safe on nil. Callers
// must not retain any view of s afterwards.
func PutReplies(s []ClientReply) { clientReplies.put(s) }

// RecycleReplies recycles the backing array of a received
// ClientReplyBatch once the consumer is done with it. Any other
// message kind is a no-op, so receivers can call it unconditionally on
// the reply-path messages they have fully consumed.
func RecycleReplies(m Message) {
	if b, ok := m.(ClientReplyBatch); ok {
		clientReplies.put(b.Replies)
	}
}

// GetReadReplies mirrors GetReplies for the read path.
func GetReadReplies(n int) []ReadReply { return readReplies.get(n) }

// PutReadReplies mirrors PutReplies for the read path.
func PutReadReplies(s []ReadReply) { readReplies.put(s) }

// RecycleReadReplies mirrors RecycleReplies for ReadReplyBatch.
func RecycleReadReplies(m Message) {
	if b, ok := m.(ReadReplyBatch); ok {
		readReplies.put(b.Replies)
	}
}
