package msg

// Codec round-trip property tests: for every message type — including
// empty/nil batches and max-size values — the wire codec and gob must
// decode one message to equal structs, so flipping the Codec knob can
// never change what a replica observes. Plus strictness tests (a
// corrupt frame must fail, never panic or misdecode) and a fuzz target
// for envelope decoding.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// bigString is a max-size-ish value payload (1 MiB) to exercise length
// handling far beyond the varint fast path.
var bigString = strings.Repeat("x", 1<<20)

// wireSamples returns at least one instance of every wire-registered
// message type, plus edge-case variants: zero values, nil vs empty
// batches, Nobody ids, negative instances, max uint64 sequence numbers
// and megabyte values.
func wireSamples() []Message {
	bigBatch := make([]BatchEntry, 40)
	for i := range bigBatch {
		bigBatch[i] = BatchEntry{Seq: uint64(i), Cmd: Command{Op: OpPut, Key: fmt.Sprintf("k%d", i), Val: "v"}}
	}
	val := Value{Client: 7, Seq: 9, Cmd: Command{Op: OpPut, Key: "k", Val: "v"}, Ack: 3}
	batched := NewValue(7, 3, bigBatch)
	props := []Proposal{
		{Instance: 0, PN: 0, Value: Value{}},
		{Instance: -5, PN: math.MaxUint64, Value: batched},
		{Instance: 1 << 40, PN: 2, Value: val},
	}
	entry := UtilEntry{Type: EntryAcceptorChange, Leader: 2, Acceptor: Nobody, Uncommitted: props, Frontier: -1}
	return []Message{
		// Client traffic.
		ClientRequest{},
		ClientRequest{Client: 1, Seq: 2, Cmd: Command{Op: OpGet, Key: "k"}, Ack: 1},
		ClientRequest{Client: Nobody, Seq: math.MaxUint64, Cmd: Command{Op: OpPut, Key: "k", Val: bigString}},
		ClientRequest{Client: 3, Seq: 10, Ack: 9, Batch: bigBatch},
		ClientRequest{Client: 3, Seq: 10, Batch: []BatchEntry{}}, // empty, not nil
		ClientReply{},
		ClientReply{Seq: 5, Instance: -1, OK: true, Result: bigString, Redirect: Nobody},
		ClientReplyBatch{},
		ClientReplyBatch{Replies: []ClientReply{}},
		ClientReplyBatch{Replies: []ClientReply{{Seq: 1, OK: true}, {Seq: 2, Redirect: 2}}},
		// 1Paxos.
		PrepareRequest{},
		PrepareRequest{PN: 9, MustBeFresh: true, From: 77},
		PrepareResponse{},
		PrepareResponse{Acceptor: 1, PN: 3, Accepted: props, Floor: 1 << 30},
		Abandon{HPN: 8, FreshMismatch: true, IamFresh: true},
		AcceptRequest{},
		AcceptRequest{Instance: 12, PN: 4, Value: batched},
		Learn{},
		Learn{Entries: []Proposal{}},
		Learn{Entries: props},
		// PaxosUtility.
		UtilPrepare{Slot: -3, PN: 1},
		UtilPromise{},
		UtilPromise{Slot: 2, PN: 3, AcceptedPN: 1, Accepted: entry},
		UtilAccept{Slot: 2, PN: 3, Entry: entry},
		UtilAccepted{Slot: 2, PN: 3, Entry: entry, From: 1},
		UtilNack{Slot: 4, PN: 9},
		// Multi-Paxos.
		MPPrepare{PN: 2, FromInstance: -1},
		MPPromise{PN: 2, From: 1, Accepted: props, Floor: -1},
		MPAccept{Instance: 3, PN: 2, Value: val},
		MPLearn{Instance: 3, PN: 2, Value: batched, From: 2},
		MPNack{PN: math.MaxUint64},
		// 2PC.
		TPCPrepare{TxID: -9, Value: batched},
		TPCAck{TxID: 1, From: 2, OK: true},
		TPCCommit{TxID: 1, Value: val},
		TPCCommitAck{TxID: 1, From: Nobody},
		TPCRollback{TxID: 1 << 50},
		// Mencius.
		MencAccept{Instance: 5, PN: 1, Value: val},
		MencLearn{Instance: 5, Value: batched, From: 0},
		MencSkip{FromInstance: 10, ToInstance: 20, From: 1},
		// Basic Paxos.
		BPPrepare{Instance: 1, PN: 2},
		BPPromise{Instance: 1, PN: 2, From: 0, AcceptedPN: 1, Accepted: batched},
		BPAccept{Instance: 1, PN: 2, Value: val},
		BPAccepted{Instance: 1, PN: 2, Value: val, From: 2},
		BPNack{Instance: -1, PN: 3},
		// Snapshot catch-up.
		CatchupRequest{},
		CatchupRequest{From: 1 << 33},
		SnapshotChunk{},
		SnapshotChunk{Seq: 3, Last: true, Data: []byte(bigString[:4096])},
		SnapshotChunk{Data: []byte{}}, // empty, not nil
		CatchupEntries{},
		CatchupEntries{Done: true},
		CatchupEntries{Entries: []Decided{{Instance: -1, Value: Value{}}, {Instance: 7, Value: batched}}, Done: true},
		// Read fast path.
		ReadRequest{},
		ReadRequest{Client: Nobody, Mode: 3, Entries: []BatchEntry{}},
		ReadRequest{Client: 2, Mode: 1, Entries: bigBatch},
		ReadReply{},
		ReadReply{Seq: math.MaxUint64, OK: true, Result: bigString, Redirect: Nobody},
		ReadReplyBatch{},
		ReadReplyBatch{Replies: []ReadReply{}},
		ReadReplyBatch{Replies: []ReadReply{{Seq: 1, OK: true, Result: "v"}, {Seq: 2, Redirect: 2}}},
		ReadIndexRequest{},
		ReadIndexRequest{Round: math.MaxUint64, Lease: true},
		ReadIndexAck{},
		ReadIndexAck{Round: 9, OK: true, Frontier: -1, Hold: 1 << 40},
		// Fault-era traffic: the shapes scenario fuzzing puts on the wire
		// mid-storm. A snapshot transfer cut by a partition leaves
		// mid-stream chunks (nonzero Seq, not Last) and restarts at Seq 0;
		// catch-up pushes arrive partial (entries without Done); lease
		// rounds come back as refusals carrying the conflicting hold;
		// reads bounce off catching-up replicas as redirects; and the
		// utility backfills regime-log gaps with zero no-op entries.
		SnapshotChunk{Seq: 17, Data: []byte(bigString[:512])},
		SnapshotChunk{Seq: 0, Data: []byte{0xff}},
		CatchupEntries{Entries: []Decided{{Instance: 40, Value: val}}},
		ReadIndexAck{Round: 12, OK: false, Frontier: 88, Hold: int64(6 * 1000 * 1000)},
		ReadReply{Seq: 31, OK: false, Redirect: 2},
		UtilAccept{Slot: 8, PN: 3, Entry: UtilEntry{}},
		UtilAccepted{Slot: 8, PN: 3, Entry: UtilEntry{}, From: 2},
	}
}

func wireRoundTrip(t *testing.T, from NodeID, m Message) (NodeID, Message) {
	t.Helper()
	payload, err := AppendEnvelope(nil, from, m)
	if err != nil {
		t.Fatalf("AppendEnvelope(%T): %v", m, err)
	}
	gotFrom, got, err := DecodeEnvelope(payload)
	if err != nil {
		t.Fatalf("DecodeEnvelope(%T): %v", m, err)
	}
	return gotFrom, got
}

func gobRoundTrip(t *testing.T, from NodeID, m Message) (NodeID, Message) {
	t.Helper()
	Register()
	type envelope struct {
		From NodeID
		M    Message
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{From: from, M: m}); err != nil {
		t.Fatalf("gob encode %T: %v", m, err)
	}
	var out envelope
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", m, err)
	}
	return out.From, out.M
}

// TestWireGobEquivalence is the codec property test: both codecs must
// round-trip every sample to the same struct (gob folds empty slices to
// nil; the wire codec matches that deliberately).
func TestWireGobEquivalence(t *testing.T) {
	for i, m := range wireSamples() {
		from := NodeID(i % 5)
		if i%7 == 0 {
			from = Nobody
		}
		wFrom, wMsg := wireRoundTrip(t, from, m)
		gFrom, gMsg := gobRoundTrip(t, from, m)
		if wFrom != gFrom || wFrom != from {
			t.Errorf("sample %d (%T): from mismatch: wire %d, gob %d, want %d", i, m, wFrom, gFrom, from)
		}
		if !reflect.DeepEqual(wMsg, gMsg) {
			t.Errorf("sample %d (%T): wire and gob decode diverge:\nwire: %+v\ngob:  %+v", i, m, wMsg, gMsg)
		}
	}
}

// TestWireTagCoverage demands a sample (and therefore a round-trip
// test) for every registered wire type, and that the wire registry and
// the gob list stay the same size — extending one without the other is
// a bug this test turns into a red build.
func TestWireTagCoverage(t *testing.T) {
	covered := map[byte]bool{}
	for _, m := range wireSamples() {
		tag, ok := wireTagOf(m)
		if !ok {
			t.Fatalf("sample %T has no wire tag", m)
		}
		covered[tag] = true
	}
	for _, wt := range wireTypes {
		if !covered[wt.tag] {
			t.Errorf("wire tag %d has no round-trip sample", wt.tag)
		}
	}
	if got, want := len(wireTypes), len(covered); got != want {
		t.Errorf("wireTypes has %d entries, samples cover %d types", got, want)
	}
	// Both registries, entry for entry: a gob-registered type without a
	// wire tag would be silently dropped by the default codec on the
	// TCP transport; a wire type outside the gob list would break the
	// ablation baseline.
	if len(gobTypes) != len(wireTypes) {
		t.Errorf("gob list has %d types, wire registry %d — extend both when adding a message",
			len(gobTypes), len(wireTypes))
	}
	for _, m := range gobTypes {
		if _, ok := wireTagOf(m); !ok {
			t.Errorf("gob-registered %T has no wire tag", m)
		}
	}
}

// TestDecodeEnvelopeStrict pins the decoder's corruption behavior:
// truncations, unknown tags and trailing bytes all error, never panic.
func TestDecodeEnvelopeStrict(t *testing.T) {
	payload, err := AppendEnvelope(nil, 1, AcceptRequest{Instance: 3, PN: 2,
		Value: Value{Client: 1, Seq: 2, Cmd: Command{Op: OpPut, Key: "k", Val: "v"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeEnvelope(nil); err == nil {
		t.Error("empty payload decoded")
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, _, err := DecodeEnvelope(payload[:cut]); err == nil {
			t.Errorf("truncation at %d/%d decoded", cut, len(payload))
		}
	}
	if _, _, err := DecodeEnvelope(append(append([]byte{}, payload...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte{}, payload...)
	bad[0] = 200 // unregistered tag
	if _, _, err := DecodeEnvelope(bad); err == nil {
		t.Error("unknown tag decoded")
	}
	if _, _, err := DecodeEnvelope([]byte{HelloTag, 2}); err == nil {
		t.Error("reserved hello tag decoded as a message")
	}
	// A huge claimed slice length must fail the SliceLen guard, not
	// attempt the allocation.
	huge := []byte{tagLearn, 2 /* from */, 0xff, 0xff, 0xff, 0xff, 0x0f /* ~4G proposals */}
	if _, _, err := DecodeEnvelope(huge); err == nil {
		t.Error("absurd slice count decoded")
	}
}

// TestRegisterIdempotent pins the double-registration safety Register
// gained when the gob list became the ablation path: any layer may call
// it defensively.
func TestRegisterIdempotent(t *testing.T) {
	Register()
	Register()
}

// FuzzDecodeEnvelope throws arbitrary bytes at the envelope decoder: it
// must never panic, and anything it accepts must re-encode and decode
// to the same message (the codec is canonical on its own output).
func FuzzDecodeEnvelope(f *testing.F) {
	for _, m := range wireSamples() {
		// Seed every type but skip the megabyte variants: huge seeds
		// make each fuzz exec IO-bound without covering new code.
		if payload, err := AppendEnvelope(nil, 1, m); err == nil && len(payload) < 8<<10 {
			f.Add(payload)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{tagLearn, 2, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, m, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re, err := AppendEnvelope(nil, from, m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		from2, m2, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if from2 != from || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged: (%d, %+v) vs (%d, %+v)", from, m, from2, m2)
		}
	})
}
