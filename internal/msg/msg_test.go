package msg

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestKindsAreUniqueAndStable(t *testing.T) {
	all := []Message{
		ClientRequest{}, ClientReply{},
		PrepareRequest{}, PrepareResponse{}, Abandon{}, AcceptRequest{}, Learn{},
		UtilPrepare{}, UtilPromise{}, UtilAccept{}, UtilAccepted{}, UtilNack{},
		MPPrepare{}, MPPromise{}, MPAccept{}, MPLearn{}, MPNack{},
		TPCPrepare{}, TPCAck{}, TPCCommit{}, TPCCommitAck{}, TPCRollback{},
		MencAccept{}, MencLearn{}, MencSkip{},
	}
	seen := make(map[string]bool, len(all))
	for _, m := range all {
		k := m.Kind()
		if k == "" {
			t.Errorf("%T has empty kind", m)
		}
		if seen[k] {
			t.Errorf("duplicate kind %q (%T)", k, m)
		}
		seen[k] = true
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpNoop, "noop"},
		{OpPut, "put"},
		{OpGet, "get"},
		{Op(42), "op(42)"},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("Op(%d).String() = %q, want %q", int(tc.op), got, tc.want)
		}
	}
}

func TestValueIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero value must report IsZero")
	}
	if (Value{Client: 1, Seq: 1, Cmd: Command{Op: OpPut}}).IsZero() {
		t.Error("real value must not report IsZero")
	}
	if (Value{Batch: []BatchEntry{{Seq: 1}}}).IsZero() {
		t.Error("batched value must not report IsZero")
	}
}

func TestValueBatchViews(t *testing.T) {
	single := Value{Client: 3, Seq: 7, Cmd: Command{Op: OpPut, Key: "k", Val: "v"}, Ack: 5}
	if single.Len() != 1 {
		t.Fatalf("single Len = %d", single.Len())
	}
	if es := single.Entries(); len(es) != 1 || es[0].Seq != 7 || es[0].Cmd != single.Cmd {
		t.Fatalf("single Entries = %+v", es)
	}
	if subs := single.Split(); len(subs) != 1 || !subs[0].Equal(single) {
		t.Fatalf("single Split = %+v", subs)
	}

	entries := []BatchEntry{
		{Seq: 7, Cmd: Command{Op: OpPut, Key: "a", Val: "1"}},
		{Seq: 8, Cmd: Command{Op: OpGet, Key: "b"}},
		{Seq: 9, Cmd: Command{Op: OpPut, Key: "c", Val: "3"}},
	}
	batched := NewValue(3, 5, entries)
	if batched.Seq != 7 || batched.Len() != 3 || len(batched.Batch) != 3 {
		t.Fatalf("batched = %+v", batched)
	}
	subs := batched.Split()
	if len(subs) != 3 {
		t.Fatalf("Split = %d sub-values", len(subs))
	}
	for i, sub := range subs {
		want := Value{Client: 3, Seq: entries[i].Seq, Cmd: entries[i].Cmd, Ack: 5}
		if !sub.Equal(want) {
			t.Errorf("Split[%d] = %+v, want %+v", i, sub, want)
		}
	}

	if one := NewValue(3, 5, entries[:1]); len(one.Batch) != 0 || one.Cmd != entries[0].Cmd {
		t.Errorf("NewValue with one entry must stay unbatched: %+v", one)
	}
	if req := NewRequest(3, 5, entries); req.Seq != 7 || len(req.Batch) != 3 {
		t.Errorf("NewRequest = %+v", req)
	}
	if es := NewRequest(3, 5, entries[:1]).Entries(); len(es) != 1 || es[0] != entries[0] {
		t.Errorf("single request Entries = %+v", es)
	}
}

func TestValueEqual(t *testing.T) {
	entries := []BatchEntry{{Seq: 1, Cmd: Command{Op: OpPut, Key: "k"}}, {Seq: 2, Cmd: Command{Op: OpGet, Key: "k"}}}
	a := NewValue(1, 0, entries)
	b := NewValue(1, 0, append([]BatchEntry(nil), entries...))
	if !a.Equal(b) {
		t.Error("identical batches must compare equal")
	}
	c := NewValue(1, 0, []BatchEntry{entries[0], {Seq: 3, Cmd: Command{Op: OpGet, Key: "k"}}})
	if a.Equal(c) {
		t.Error("different batches must not compare equal")
	}
	if a.Equal(Value{Client: 1, Seq: 1, Cmd: entries[0].Cmd}) {
		t.Error("batched vs single must not compare equal")
	}
}

func TestUtilEntryIsZero(t *testing.T) {
	if !(UtilEntry{}).IsZero() {
		t.Error("zero entry must report IsZero")
	}
	if (UtilEntry{Type: EntryLeaderChange}).IsZero() {
		t.Error("typed entry must not report IsZero")
	}
}

// TestGobRoundTripAllMessages ensures every registered message survives
// the TCP transport's wire encoding inside an interface-typed envelope.
func TestGobRoundTripAllMessages(t *testing.T) {
	Register()
	Register() // idempotent: re-registration of identical types is fine

	type envelope struct {
		From NodeID
		M    Message
	}
	cases := []Message{
		ClientRequest{Client: 3, Seq: 7, Cmd: Command{Op: OpPut, Key: "k", Val: "v"}},
		ClientReply{Seq: 7, Instance: 4, OK: true, Result: "v", Redirect: Nobody},
		PrepareRequest{PN: 9, MustBeFresh: true, From: 2},
		PrepareResponse{Acceptor: 1, PN: 9, Accepted: []Proposal{{Instance: 1, PN: 9, Value: Value{Client: 3, Seq: 7}}}},
		Abandon{HPN: 11, FreshMismatch: true, IamFresh: true},
		AcceptRequest{Instance: 5, PN: 9, Value: Value{Client: 3, Seq: 8}},
		Learn{Entries: []Proposal{{Instance: 5, PN: 9}}},
		UtilAccepted{Slot: 2, PN: 3, From: 1, Entry: UtilEntry{
			Type: EntryAcceptorChange, Leader: 0, Acceptor: 1, Frontier: 9,
			Uncommitted: []Proposal{{Instance: 9, PN: 3}},
		}},
		MPPromise{PN: 4, From: 2, Accepted: []Proposal{{Instance: 0, PN: 1}}},
		TPCPrepare{TxID: 12, Value: Value{Client: 1, Seq: 1}},
		MencSkip{FromInstance: 0, ToInstance: 9, From: 2},
	}
	for _, m := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{From: 1, M: m}); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		var out envelope
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if out.M.Kind() != m.Kind() {
			t.Fatalf("round trip changed kind: %q -> %q", m.Kind(), out.M.Kind())
		}
	}
}

// TestGobRoundTripBatched pins the batched wire format: a batched
// request and a batched agreement value must survive the TCP encoding
// with every entry intact and in order.
func TestGobRoundTripBatched(t *testing.T) {
	Register()
	entries := []BatchEntry{
		{Seq: 11, Cmd: Command{Op: OpPut, Key: "a", Val: "1"}},
		{Seq: 12, Cmd: Command{Op: OpGet, Key: "b"}},
		{Seq: 13, Cmd: Command{Op: OpPut, Key: "c", Val: "3"}},
	}
	val := NewValue(4, 10, entries)

	type envelope struct {
		From NodeID
		M    Message
	}
	roundTrip := func(m Message) Message {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{From: 1, M: m}); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		var out envelope
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		return out.M
	}

	req := roundTrip(NewRequest(4, 10, entries)).(ClientRequest)
	if req.Client != 4 || req.Seq != 11 || req.Ack != 10 || len(req.Batch) != 3 {
		t.Fatalf("request round trip = %+v", req)
	}
	for i, be := range req.Entries() {
		if be != entries[i] {
			t.Fatalf("request entry %d = %+v, want %+v", i, be, entries[i])
		}
	}

	acc := roundTrip(AcceptRequest{Instance: 5, PN: 9, Value: val}).(AcceptRequest)
	if !acc.Value.Equal(val) {
		t.Fatalf("accept round trip changed value: %+v", acc.Value)
	}

	learn := roundTrip(Learn{Entries: []Proposal{{Instance: 5, PN: 9, Value: val}}}).(Learn)
	if len(learn.Entries) != 1 || !learn.Entries[0].Value.Equal(val) {
		t.Fatalf("learn round trip changed value: %+v", learn.Entries)
	}
}
