package msg

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestKindsAreUniqueAndStable(t *testing.T) {
	all := []Message{
		ClientRequest{}, ClientReply{},
		PrepareRequest{}, PrepareResponse{}, Abandon{}, AcceptRequest{}, Learn{},
		UtilPrepare{}, UtilPromise{}, UtilAccept{}, UtilAccepted{}, UtilNack{},
		MPPrepare{}, MPPromise{}, MPAccept{}, MPLearn{}, MPNack{},
		TPCPrepare{}, TPCAck{}, TPCCommit{}, TPCCommitAck{}, TPCRollback{},
		MencAccept{}, MencLearn{}, MencSkip{},
	}
	seen := make(map[string]bool, len(all))
	for _, m := range all {
		k := m.Kind()
		if k == "" {
			t.Errorf("%T has empty kind", m)
		}
		if seen[k] {
			t.Errorf("duplicate kind %q (%T)", k, m)
		}
		seen[k] = true
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpNoop, "noop"},
		{OpPut, "put"},
		{OpGet, "get"},
		{Op(42), "op(42)"},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("Op(%d).String() = %q, want %q", int(tc.op), got, tc.want)
		}
	}
}

func TestValueIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero value must report IsZero")
	}
	if (Value{Client: 1, Seq: 1, Cmd: Command{Op: OpPut}}).IsZero() {
		t.Error("real value must not report IsZero")
	}
}

func TestUtilEntryIsZero(t *testing.T) {
	if !(UtilEntry{}).IsZero() {
		t.Error("zero entry must report IsZero")
	}
	if (UtilEntry{Type: EntryLeaderChange}).IsZero() {
		t.Error("typed entry must not report IsZero")
	}
}

// TestGobRoundTripAllMessages ensures every registered message survives
// the TCP transport's wire encoding inside an interface-typed envelope.
func TestGobRoundTripAllMessages(t *testing.T) {
	Register()
	Register() // idempotent: re-registration of identical types is fine

	type envelope struct {
		From NodeID
		M    Message
	}
	cases := []Message{
		ClientRequest{Client: 3, Seq: 7, Cmd: Command{Op: OpPut, Key: "k", Val: "v"}},
		ClientReply{Seq: 7, Instance: 4, OK: true, Result: "v", Redirect: Nobody},
		PrepareRequest{PN: 9, MustBeFresh: true, From: 2},
		PrepareResponse{Acceptor: 1, PN: 9, Accepted: []Proposal{{Instance: 1, PN: 9, Value: Value{Client: 3, Seq: 7}}}},
		Abandon{HPN: 11, FreshMismatch: true, IamFresh: true},
		AcceptRequest{Instance: 5, PN: 9, Value: Value{Client: 3, Seq: 8}},
		Learn{Entries: []Proposal{{Instance: 5, PN: 9}}},
		UtilAccepted{Slot: 2, PN: 3, From: 1, Entry: UtilEntry{
			Type: EntryAcceptorChange, Leader: 0, Acceptor: 1, Frontier: 9,
			Uncommitted: []Proposal{{Instance: 9, PN: 3}},
		}},
		MPPromise{PN: 4, From: 2, Accepted: []Proposal{{Instance: 0, PN: 1}}},
		TPCPrepare{TxID: 12, Value: Value{Client: 1, Seq: 1}},
		MencSkip{FromInstance: 0, ToInstance: 9, From: 2},
	}
	for _, m := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{From: 1, M: m}); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		var out envelope
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if out.M.Kind() != m.Kind() {
			t.Fatalf("round trip changed kind: %q -> %q", m.Kind(), out.M.Kind())
		}
	}
}
