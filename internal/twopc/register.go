package twopc

import "consensusinside/internal/protocol"

func init() {
	protocol.Register(protocol.TwoPC, protocol.Info{
		Name:        "2PC",
		MinReplicas: 2,
		New: func(cfg protocol.Config) protocol.Engine {
			return New(Config{
				ID:                cfg.ID,
				Replicas:          cfg.Replicas,
				Applier:           cfg.Applier,
				LocalReads:        cfg.LocalReads,
				TxRetryTimeout:    cfg.TxRetryTimeout,
				SnapshotInterval:  cfg.SnapshotInterval,
				SnapshotChunkSize: cfg.SnapshotChunkSize,
				Recover:           cfg.Recover,
				ReadMode:          cfg.ReadMode,
				LeaseDuration:     cfg.LeaseDuration,
				Tracer:            cfg.Tracer,
				Events:            cfg.Events,
			})
		},
	})
}
