package twopc

import (
	"testing"
	"time"

	"consensusinside/internal/msg"
	"consensusinside/internal/runtime"
	"consensusinside/internal/simnet"
	"consensusinside/internal/topology"
)

func replicaIDs(n int) []msg.NodeID {
	out := make([]msg.NodeID, n)
	for i := range out {
		out[i] = msg.NodeID(i)
	}
	return out
}

func put(client msg.NodeID, seq uint64, key, val string) msg.ClientRequest {
	return msg.ClientRequest{Client: client, Seq: seq, Cmd: msg.Command{Op: msg.OpPut, Key: key, Val: val}}
}

func TestCoordinatorRunsTwoPhases(t *testing.T) {
	r := New(Config{ID: 0, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(0, 3)
	r.Start(ctx)
	r.Receive(ctx, 9, put(9, 1, "k", "v"))
	// Phase 1: prepares to both participants; the local copy locks
	// directly.
	prepares := 0
	for _, s := range ctx.TakeSent() {
		if _, ok := s.M.(msg.TPCPrepare); ok {
			prepares++
		}
	}
	if prepares != 2 {
		t.Fatalf("sent %d prepares, want 2", prepares)
	}
	// One ack is not enough: the protocol blocks on ALL of them.
	r.Receive(ctx, 1, msg.TPCAck{TxID: 0, From: 1, OK: true})
	if len(ctx.Sent) != 0 {
		t.Fatalf("commit must wait for all acks; sent %+v", ctx.Sent)
	}
	r.Receive(ctx, 2, msg.TPCAck{TxID: 0, From: 2, OK: true})
	commits, replies := 0, 0
	for _, s := range ctx.Sent {
		switch s.M.(type) {
		case msg.TPCCommit:
			commits++
		case msg.ClientReply:
			replies++
		}
	}
	if commits != 2 || replies != 1 {
		t.Fatalf("after all acks: %d commits, %d replies; want 2,1", commits, replies)
	}
	if r.Commits() != 1 {
		t.Fatalf("Commits = %d, want 1", r.Commits())
	}
}

func TestParticipantLocksAndApplies(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	v := msg.Value{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "v"}}
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: v})
	ack, ok := ctx.LastSent().M.(msg.TPCAck)
	if !ok || !ack.OK {
		t.Fatalf("want ok ack, got %+v", ctx.LastSent().M)
	}
	ctx.TakeSent()
	r.Receive(ctx, 0, msg.TPCCommit{TxID: 0, Value: v})
	if _, ok := ctx.LastSent().M.(msg.TPCCommitAck); !ok {
		t.Fatalf("want commit ack, got %+v", ctx.LastSent().M)
	}
	if r.Commits() != 1 {
		t.Fatalf("Commits = %d, want 1", r.Commits())
	}
	if got, _ := r.kv.Get("k"); got != "v" {
		t.Fatalf("kv[k] = %q, want v", got)
	}
}

func TestConflictingPrepareWaitsForLock(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	v1 := msg.Value{Client: 8, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "a"}}
	v2 := msg.Value{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "b"}}
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: v1})
	ctx.TakeSent()
	// Same key: the second prepare's ack is deferred, not refused.
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 1, Value: v2})
	if len(ctx.Sent) != 0 {
		t.Fatalf("conflicting prepare must wait, sent %+v", ctx.Sent)
	}
	// Committing the first releases the lock and acks the second.
	r.Receive(ctx, 0, msg.TPCCommit{TxID: 0, Value: v1})
	foundAck := false
	for _, s := range ctx.Sent {
		if a, ok := s.M.(msg.TPCAck); ok && a.TxID == 1 && a.OK {
			foundAck = true
		}
	}
	if !foundAck {
		t.Fatalf("deferred ack missing after unlock: %+v", ctx.Sent)
	}
}

func TestDistinctKeysDoNotConflict(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: msg.Value{Client: 8, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "a"}}})
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 1, Value: msg.Value{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "b"}}})
	acks := 0
	for _, s := range ctx.Sent {
		if a, ok := s.M.(msg.TPCAck); ok && a.OK {
			acks++
		}
	}
	if acks != 2 {
		t.Fatalf("independent keys must both ack; got %d", acks)
	}
}

func TestRollbackReleasesLock(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	v := msg.Value{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "v"}}
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: v})
	r.Receive(ctx, 0, msg.TPCRollback{TxID: 0})
	if r.Commits() != 0 {
		t.Fatal("rolled-back tx must not apply")
	}
	ctx.TakeSent()
	// The key must be free again.
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 1, Value: v})
	if a, ok := ctx.LastSent().M.(msg.TPCAck); !ok || !a.OK {
		t.Fatalf("lock not released by rollback: %+v", ctx.LastSent().M)
	}
}

func TestParticipantForwardsToCoordinator(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	r.Receive(ctx, 9, put(9, 1, "k", "v"))
	if s := ctx.LastSent(); s == nil || s.To != 0 {
		t.Fatalf("update must be forwarded to the coordinator, got %+v", s)
	}
}

func TestLocalReadServedWhenUnlocked(t *testing.T) {
	r := New(Config{ID: 1, Replicas: replicaIDs(3), LocalReads: true})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	// Seed the local copy through a committed write.
	v := msg.Value{Client: 8, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "v"}}
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: v})
	r.Receive(ctx, 0, msg.TPCCommit{TxID: 0, Value: v})
	ctx.TakeSent()

	read := msg.ClientRequest{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpGet, Key: "k"}}
	r.Receive(ctx, 9, read)
	rep, ok := ctx.LastSent().M.(msg.ClientReply)
	if !ok || !rep.OK || rep.Result != "v" {
		t.Fatalf("local read reply = %+v", ctx.LastSent().M)
	}
	if r.LocalReads() != 1 {
		t.Fatalf("LocalReads = %d, want 1", r.LocalReads())
	}
}

func TestLocalReadDeferredWhileLocked(t *testing.T) {
	// "A client can locally service the read requests if it is not
	// received in the gap between two phases of 2PC" — while locked, the
	// read goes through the coordinator instead.
	r := New(Config{ID: 1, Replicas: replicaIDs(3), LocalReads: true})
	ctx := runtime.NewFakeContext(1, 3)
	r.Start(ctx)
	v := msg.Value{Client: 8, Seq: 1, Cmd: msg.Command{Op: msg.OpPut, Key: "k", Val: "v"}}
	r.Receive(ctx, 0, msg.TPCPrepare{TxID: 0, Value: v}) // lock held, no commit yet
	ctx.TakeSent()
	read := msg.ClientRequest{Client: 9, Seq: 1, Cmd: msg.Command{Op: msg.OpGet, Key: "k"}}
	r.Receive(ctx, 9, read)
	if s := ctx.LastSent(); s == nil || s.To != 0 {
		t.Fatalf("locked read must be forwarded to the coordinator, got %+v", s)
	}
	if r.LocalReads() != 0 {
		t.Fatal("locked read must not count as local")
	}
}

func TestSessionDedup(t *testing.T) {
	r := New(Config{ID: 0, Replicas: replicaIDs(3)})
	ctx := runtime.NewFakeContext(0, 3)
	r.Start(ctx)
	req := put(9, 1, "k", "v")
	r.Receive(ctx, 9, req)
	r.Receive(ctx, 1, msg.TPCAck{TxID: 0, From: 1, OK: true})
	r.Receive(ctx, 2, msg.TPCAck{TxID: 0, From: 2, OK: true})
	ctx.TakeSent()
	r.Receive(ctx, 9, req) // retry after commit
	rep, ok := ctx.LastSent().M.(msg.ClientReply)
	if !ok || !rep.OK {
		t.Fatalf("retry must be answered from sessions, got %+v", ctx.LastSent().M)
	}
	if r.Commits() != 1 {
		t.Fatalf("Commits = %d, want 1 (no re-execution)", r.Commits())
	}
}

// --- Scenario tests ---

type recordingClient struct{ replies []msg.ClientReply }

func (c *recordingClient) Start(runtime.Context) {}
func (c *recordingClient) Receive(ctx runtime.Context, from msg.NodeID, m msg.Message) {
	if rep, ok := m.(msg.ClientReply); ok {
		c.replies = append(c.replies, rep)
	}
}
func (c *recordingClient) Timer(runtime.Context, runtime.TimerTag) {}

func TestScenarioBlocksOnAnySlowReplica(t *testing.T) {
	// The defining 2PC weakness (Section 2.2): ANY unresponsive replica
	// blocks every update, because the coordinator needs all acks. The
	// fault is a deep slowdown — the paper's model of a loaded core; the
	// queued prepare is eventually processed once the core speeds up.
	machine := topology.Uniform(4, time.Microsecond)
	net := simnet.New(machine, simnet.ManyCore(), 1)
	ids := replicaIDs(3)
	var replicas []*Replica
	for i := 0; i < 3; i++ {
		r := New(Config{ID: msg.NodeID(i), Replicas: ids})
		replicas = append(replicas, r)
		net.AddNode(r)
	}
	client := &recordingClient{}
	clientID := net.AddNode(client)
	net.Start()
	// Slow participant 2 after its (cheap) Start work: handling the
	// prepare will occupy it for ~85ms of virtual time, so the update is
	// stalled at the 50ms mark and completes only once the slice is paid.
	net.At(50*time.Microsecond, func() { net.SetSlow(2, 30_000) })
	net.At(100*time.Microsecond, func() {
		net.Inject(clientID, 0, put(clientID, 1, "k", "v"))
	})
	net.RunFor(50 * time.Millisecond)
	if len(client.replies) != 0 {
		t.Fatalf("2PC must block with a participant stalled; got %d replies", len(client.replies))
	}
	net.RunFor(300 * time.Millisecond)
	if len(client.replies) != 1 {
		t.Fatalf("2PC must complete once the slow core pays its slice; got %d replies", len(client.replies))
	}
}

func TestScenarioAllReplicasApply(t *testing.T) {
	machine := topology.Uniform(4, time.Microsecond)
	net := simnet.New(machine, simnet.ManyCore(), 2)
	ids := replicaIDs(3)
	var replicas []*Replica
	for i := 0; i < 3; i++ {
		r := New(Config{ID: msg.NodeID(i), Replicas: ids})
		replicas = append(replicas, r)
		net.AddNode(r)
	}
	client := &recordingClient{}
	clientID := net.AddNode(client)
	net.Start()
	for i := uint64(1); i <= 10; i++ {
		seq := i
		net.At(time.Duration(i)*100*time.Microsecond, func() {
			net.Inject(clientID, 0, put(clientID, seq, "k", "v"))
		})
	}
	net.RunFor(50 * time.Millisecond)
	if len(client.replies) != 10 {
		t.Fatalf("client got %d replies, want 10", len(client.replies))
	}
	for i, r := range replicas {
		if r.Commits() != 10 {
			t.Errorf("replica %d applied %d, want 10", i, r.Commits())
		}
		if len(r.History()) != 10 {
			t.Errorf("replica %d history %d, want 10", i, len(r.History()))
		}
	}
}
