// Package twopc implements the two-phase-commit *agreement* protocol in
// the sense the paper (following Barrelfish) uses it — a blocking
// primary-backup replication scheme, not a durable transaction commit
// (Section 2.2 and footnote 1).
//
// The coordinator locks every replica's copy of the datum, then commits:
//
//	phase 1: coordinator ──prepare──▶ all replicas, each locks + acks
//	phase 2: coordinator ──commit──▶ all replicas, each applies + unlocks
//	         coordinator replies after every commit_ack
//
// Because the coordinator needs responses from *all* replicas, a single
// slow node stalls every update — the behaviour Sections 2.2 and 7.6
// demonstrate and 1Paxos is designed to avoid. There is deliberately no
// failover logic: 2PC is the blocking baseline.
//
// The Joint deployment (every client is a replica, Section 7.5) adds the
// local-read optimization: a replica answers reads from its own copy when
// the key is not locked — "a client can locally service the read requests
// if it is not received in the gap between two phases of 2PC".
package twopc

import (
	"fmt"
	"time"

	"consensusinside/internal/metrics"
	"consensusinside/internal/msg"
	"consensusinside/internal/obs"
	"consensusinside/internal/readpath"
	"consensusinside/internal/rsm"
	"consensusinside/internal/runtime"
	"consensusinside/internal/snapshot"
	"consensusinside/internal/trace"
)

// timerTxRetry re-drives a pending transaction's current phase
// (Arg: the transaction id). Armed only when Config.TxRetryTimeout is
// set — the paper's 2PC is strictly blocking and retransmits nothing.
const timerTxRetry = 1

// Config parameterizes a Replica.
type Config struct {
	// ID is this node; Replicas is the replication group in a fixed
	// shared order. Replicas[0] is the coordinator, permanently: the
	// protocol is blocking by design and has no election.
	ID       msg.NodeID
	Replicas []msg.NodeID

	// Applier is the replicated state machine; nil means a fresh KV.
	Applier rsm.Applier

	// LocalReads enables the Joint-mode read optimization.
	LocalReads bool

	// TxRetryTimeout makes the coordinator re-send the current phase of
	// a transaction still pending after this long: prepares to replicas
	// that have not acked, commits to replicas that have not confirmed.
	// Both are idempotent on the participants, so the only behavioral
	// change is that a transaction stalled by a crashed participant
	// completes once that participant restarts (KV.RestartReplica).
	// Zero — the default, and what the simulated experiments use —
	// disables retransmission, the paper's strictly blocking 2PC.
	TxRetryTimeout time.Duration

	// SnapshotInterval captures a durable-state snapshot every this many
	// applied commands (2PC has no instance log, so the snapshot is the
	// whole recovery story; 0 = off). See internal/snapshot.
	SnapshotInterval int

	// SnapshotChunkSize is the snapshot transfer chunk size (0 = the
	// snapshot package default).
	SnapshotChunkSize int

	// Recover makes the replica stream a state snapshot from a live peer
	// before serving — the restarted-replica mode.
	Recover bool

	// ReadMode selects the read fast path (internal/readpath). The
	// fixed coordinator is 2PC's serialization point — no other node
	// ever commits independently, and the coordinator answers a client
	// only after applying locally — so read-index reads are served at
	// the coordinator with no confirmation round at all. Lease mode
	// degrades to read-index (a lease adds nothing to a node that can
	// never be deposed); follower mode serves stale-bounded reads from
	// any participant.
	ReadMode readpath.Mode

	// LeaseDuration overrides readpath.DefaultLeaseDuration (only
	// relevant after the lease-to-index degradation's round timeout).
	LeaseDuration time.Duration

	// Tracer, when non-nil, receives decide/apply stage stamps for
	// sampled commands (internal/trace). 2PC has no learner log, so the
	// decide stamp is the coordinator's all-acks moment and the apply
	// stamp is the local commit.
	Tracer *trace.Tracer

	// Events, when non-nil, receives rare-event timeline entries
	// (internal/obs).
	Events *obs.EventLog
}

// Replica is one 2PC node (coordinator or participant).
type Replica struct {
	cfg      Config
	me       msg.NodeID
	replicas []msg.NodeID
	coord    msg.NodeID
	ctx      runtime.Context

	// Coordinator state. inflight maps each command currently carried by
	// a live transaction to that transaction, so a client retry (the
	// bridge rotates targets on its retry timer) can never open a second
	// transaction for the same command: two transactions locking the
	// same key in different orders on different replicas deadlock — the
	// exact cycle a crashed participant's stall would otherwise trigger.
	nextTx   int64
	txs      map[int64]*tx
	inflight map[originKey]int64

	// Participant state (the coordinator is also a participant for its
	// own local copy).
	locks    map[string]int64 // key -> transaction holding the lock
	prepared map[int64]msg.Value
	waiting  map[string][]pendingPrepare // prepares blocked on a lock

	kv       *rsm.KV
	applier  rsm.Applier
	sessions *rsm.Sessions
	snap     *snapshot.Manager
	read     *readpath.Server
	history  []msg.Value // local apply order, for tests; truncated by snapshots

	commits    int64
	localReads int64
}

type tx struct {
	id         int64
	value      msg.Value
	acks       map[msg.NodeID]bool
	commitAcks map[msg.NodeID]bool
	committed  bool
}

type pendingPrepare struct {
	from msg.NodeID
	m    msg.TPCPrepare
}

// originKey identifies one client command across retries.
type originKey struct {
	client msg.NodeID
	seq    uint64
}

// clearInflight forgets t's commands' retry-dedupe records (call once
// the transaction commits or rolls back).
func (r *Replica) clearInflight(t *tx) {
	for _, be := range t.value.Entries() {
		key := originKey{t.value.Client, be.Seq}
		if r.inflight[key] == t.id {
			delete(r.inflight, key)
		}
	}
}

var _ runtime.Handler = (*Replica)(nil)

// New builds a Replica. It panics on malformed configuration.
func New(cfg Config) *Replica {
	if len(cfg.Replicas) < 2 {
		panic("twopc: need at least two replicas")
	}
	in := false
	for _, id := range cfg.Replicas {
		if id == cfg.ID {
			in = true
			break
		}
	}
	if !in {
		panic(fmt.Sprintf("twopc: node %d not in replica set %v", cfg.ID, cfg.Replicas))
	}
	var kv *rsm.KV
	applier := cfg.Applier
	if applier == nil {
		k := rsm.NewKV()
		kv = k
		applier = k
	} else if k, ok := applier.(*rsm.KV); ok {
		kv = k
	}
	r := &Replica{
		cfg:      cfg,
		me:       cfg.ID,
		replicas: append([]msg.NodeID(nil), cfg.Replicas...),
		coord:    cfg.Replicas[0],
		txs:      make(map[int64]*tx),
		inflight: make(map[originKey]int64),
		locks:    make(map[string]int64),
		prepared: make(map[int64]msg.Value),
		waiting:  make(map[string][]pendingPrepare),
		kv:       kv,
		applier:  applier,
		sessions: rsm.NewSessions(),
	}
	// 2PC has no instance log: the snapshot (state image + session
	// frontiers) is the entire recovery story, and Interval counts
	// applied commands.
	r.snap = snapshot.New(snapshot.Config{
		ID:           cfg.ID,
		Replicas:     cfg.Replicas,
		Interval:     int64(cfg.SnapshotInterval),
		ChunkSize:    cfg.SnapshotChunkSize,
		Recover:      cfg.Recover,
		Events:       cfg.Events,
		RetryTimeout: 2 * cfg.TxRetryTimeout,
	}, nil, r.sessions, applier)
	r.snap.OnSnapshot(func(int64) {
		// The apply history below the snapshot is captured by its state
		// image; dropping it is what bounds this engine's memory.
		r.history = r.history[:0]
	})
	mode := cfg.ReadMode
	if kv == nil {
		mode = readpath.Consensus // no local KV to serve from
	}
	r.read = readpath.New(readpath.Config{
		ID:            cfg.ID,
		Replicas:      cfg.Replicas,
		Mode:          mode,
		LeaseDuration: cfg.LeaseDuration,
		Events:        cfg.Events,
		HasLeader:     true,
		IsLeader:      func() bool { return r.me == r.coord },
		Leader:        func() msg.NodeID { return r.coord },
		// The coordinator needs no confirmation: it is the only node
		// that ever commits, and it applies locally before answering
		// the client, so its state machine covers every acknowledged
		// write by construction.
		Confirmers: func() []msg.NodeID { return nil },
		NeedAcks:   0,
		Frontier:   func() int64 { return r.commits },
		Applied:    func() int64 { return r.commits },
		Ready:      func() bool { return r.snap.Recovered() && !r.snap.CatchingUp() },
		Read: func(key string) (string, bool) {
			if kv == nil {
				return "", false
			}
			return kv.Get(key)
		},
	})
	return r
}

// Coordinator reports the fixed coordinator node.
func (r *Replica) Coordinator() msg.NodeID { return r.coord }

// Commits reports how many transactions this node has applied locally.
func (r *Replica) Commits() int64 { return r.commits }

// LocalReads reports how many reads were served from the local copy.
func (r *Replica) LocalReads() int64 { return r.localReads }

// History returns a copy of the local apply order.
func (r *Replica) History() []msg.Value {
	out := make([]msg.Value, len(r.history))
	copy(out, r.history)
	return out
}

// SnapshotStats reports the replica's recovery-subsystem counters.
func (r *Replica) SnapshotStats() metrics.SnapshotStats { return r.snap.Stats() }

// Recovered reports whether this replica has finished recovering (see
// snapshot.Manager.Recovered); trivially true unless built in Recover
// mode. Safe from any goroutine.
func (r *Replica) Recovered() bool { return r.snap.Recovered() }

// Start implements runtime.Handler; 2PC needs no bootstrap round, so
// only a recovering replica's catch-up request leaves here.
func (r *Replica) Start(ctx runtime.Context) {
	r.ctx = ctx
	r.snap.Start(ctx)
	r.read.Start(ctx)
}

// ReadStats reports the replica's read-fast-path counters.
func (r *Replica) ReadStats() metrics.ReadStats { return r.read.Stats() }

// Timer implements runtime.Handler: the protocol itself sets no timers
// (it blocks, by design) — only the optional transaction retransmit and
// the recovery subsystem land here.
func (r *Replica) Timer(ctx runtime.Context, tag runtime.TimerTag) {
	r.ctx = ctx
	if r.snap.HandleTimer(ctx, tag) {
		return
	}
	if r.read.HandleTimer(ctx, tag) {
		return
	}
	if tag.Kind == timerTxRetry {
		r.onTxRetry(tag.Arg)
	}
}

// onTxRetry re-drives a transaction still pending after TxRetryTimeout:
// the current phase's message goes again to every replica that has not
// answered it (participants treat duplicates idempotently). This is how
// a transaction stalled by a crashed participant completes once the
// participant restarts and re-locks.
func (r *Replica) onTxRetry(txID int64) {
	t, ok := r.txs[txID]
	if !ok {
		return
	}
	for _, id := range r.replicas {
		if id == r.me {
			continue
		}
		if !t.committed && !t.acks[id] {
			r.ctx.Send(id, msg.TPCPrepare{TxID: t.id, Value: t.value})
		}
		if t.committed && !t.commitAcks[id] {
			r.ctx.Send(id, msg.TPCCommit{TxID: t.id, Value: t.value})
		}
	}
	r.armTxRetry(t.id)
}

func (r *Replica) armTxRetry(txID int64) {
	if r.cfg.TxRetryTimeout > 0 {
		r.ctx.After(r.cfg.TxRetryTimeout, runtime.TimerTag{Kind: timerTxRetry, Arg: txID})
	}
}

// Receive dispatches one message.
func (r *Replica) Receive(ctx runtime.Context, from msg.NodeID, m msg.Message) {
	r.ctx = ctx
	if r.snap.Handle(ctx, from, m) {
		return
	}
	if r.read.Handle(ctx, from, m) {
		return
	}
	switch mm := m.(type) {
	case msg.ClientRequest:
		r.onClientRequest(from, mm)
	case msg.TPCPrepare:
		r.onPrepare(from, mm)
	case msg.TPCAck:
		r.onAck(mm)
	case msg.TPCCommit:
		r.onCommit(from, mm)
	case msg.TPCCommitAck:
		r.onCommitAck(mm)
	case msg.TPCRollback:
		r.onRollback(mm)
	}
}

// --- Client path ---

func (r *Replica) onClientRequest(from msg.NodeID, req msg.ClientRequest) {
	if r.snap.CatchingUp() {
		return // recovering: serve nothing until the state transfer lands
	}
	// Committed entries (single command or batch alike) are answered
	// from the session table; what remains still needs a transaction.
	fresh := r.sessions.Screen(req, func(rep msg.ClientReply) { r.ctx.Send(req.Client, rep) })
	if len(fresh) == 0 {
		return
	}
	// Joint-mode local read: serve from the local copy unless a key is
	// in the gap between the two phases (locked). A batch is served
	// locally only when every remaining entry qualifies — mixing local
	// reads into a batch with updates would reorder them around the
	// transaction.
	if r.cfg.LocalReads && r.kv != nil {
		local := true
		for _, be := range fresh {
			if be.Cmd.Op != msg.OpGet {
				local = false
				break
			}
			if _, locked := r.locks[be.Cmd.Key]; locked {
				local = false
				break
			}
		}
		if local {
			for _, be := range fresh {
				val, _ := r.kv.Get(be.Cmd.Key)
				r.localReads++
				r.ctx.Send(req.Client, msg.ClientReply{Seq: be.Seq, OK: true, Result: val})
			}
			return
		}
	}
	if r.me != r.coord {
		// Participants funnel updates through the coordinator.
		r.ctx.Send(r.coord, req)
		return
	}
	// Drop entries a live transaction already carries (a client retry):
	// that transaction's commit will answer them. Opening a second
	// transaction for the same command would lock its keys in a
	// different order on different replicas — a deadlock, not a retry.
	entries := fresh[:0:0]
	for _, be := range fresh {
		if txID, live := r.inflight[originKey{req.Client, be.Seq}]; live {
			if _, ok := r.txs[txID]; ok {
				continue
			}
			delete(r.inflight, originKey{req.Client, be.Seq})
		}
		entries = append(entries, be)
	}
	if len(entries) == 0 {
		return
	}
	r.beginTx(msg.NewValue(req.Client, req.Ack, entries))
}

// --- Coordinator ---

func (r *Replica) beginTx(v msg.Value) {
	id := r.nextTx
	r.nextTx++
	t := &tx{
		id:         id,
		value:      v,
		acks:       make(map[msg.NodeID]bool),
		commitAcks: make(map[msg.NodeID]bool),
	}
	r.txs[id] = t
	for _, be := range v.Entries() {
		r.inflight[originKey{v.Client, be.Seq}] = id
	}
	// Phase 1: lock everywhere, including our own copy.
	for _, id2 := range r.replicas {
		if id2 == r.me {
			continue
		}
		r.ctx.Send(id2, msg.TPCPrepare{TxID: id, Value: v})
	}
	r.armTxRetry(id)
	r.localPrepare(t)
}

// txKeys returns the distinct keys v's commands touch, in first-use
// order — the lock set of the transaction. A batch locks every key it
// writes or reads; a single command locks one.
func txKeys(v msg.Value) []string {
	entries := v.Entries()
	out := make([]string, 0, len(entries))
	seen := make(map[string]bool, len(entries))
	for _, be := range entries {
		if !seen[be.Cmd.Key] {
			seen[be.Cmd.Key] = true
			out = append(out, be.Cmd.Key)
		}
	}
	return out
}

// blockedOn reports the first of v's keys held by a different
// transaction, if any. Lock acquisition is all-or-nothing: a prepare
// that cannot take its whole lock set takes nothing and queues on the
// blocking key, so no transaction ever holds one key while waiting on
// another — multi-key batches cannot deadlock.
func (r *Replica) blockedOn(txID int64, v msg.Value) (string, bool) {
	for _, key := range txKeys(v) {
		if holder, locked := r.locks[key]; locked && holder != txID {
			return key, true
		}
	}
	return "", false
}

// lockAll takes v's whole lock set for txID (call only after blockedOn
// reported clear).
func (r *Replica) lockAll(txID int64, v msg.Value) {
	for _, key := range txKeys(v) {
		r.locks[key] = txID
	}
}

// localPrepare runs the participant prepare on the coordinator's own copy.
func (r *Replica) localPrepare(t *tx) {
	if key, blocked := r.blockedOn(t.id, t.value); blocked {
		r.waiting[key] = append(r.waiting[key], pendingPrepare{
			from: r.me,
			m:    msg.TPCPrepare{TxID: t.id, Value: t.value},
		})
		return
	}
	r.lockAll(t.id, t.value)
	r.prepared[t.id] = t.value
	r.onAck(msg.TPCAck{TxID: t.id, From: r.me, OK: true})
}

func (r *Replica) onAck(m msg.TPCAck) {
	t, ok := r.txs[m.TxID]
	if !ok || t.committed {
		return
	}
	if !m.OK {
		// A replica refused (its copy is locked by another coordinator —
		// impossible with a single fixed coordinator, but handled for
		// completeness): roll back.
		for _, id := range r.replicas {
			if id != r.me {
				r.ctx.Send(id, msg.TPCRollback{TxID: t.id})
			}
		}
		r.releaseLocks(t.id, t.value)
		delete(r.txs, t.id)
		r.clearInflight(t)
		delete(r.prepared, t.id)
		var replies []msg.ClientReply
		for _, be := range t.value.Entries() {
			replies = append(replies, msg.ClientReply{Seq: be.Seq, OK: false, Redirect: r.coord})
		}
		r.ctx.Send(t.value.Client, msg.WrapReplies(replies))
		return
	}
	t.acks[m.From] = true
	if len(t.acks) < len(r.replicas) {
		return // blocking: *all* replicas must ack (Section 2.2)
	}
	// Phase 2: commit everywhere. The agreement is reached once every
	// replica has acked the prepare (this is 2PC in its agreement form,
	// not durable transaction commit), so the client is answered as soon
	// as the commit orders are out; the commit acks that follow only
	// retire the transaction record and release coordination state.
	t.committed = true
	if r.cfg.Tracer.Enabled() {
		r.traceMark(trace.StageDecide, t.value)
	}
	r.clearInflight(t) // committed: session screening owns retries from here
	for _, id := range r.replicas {
		if id == r.me {
			continue
		}
		r.ctx.Send(id, msg.TPCCommit{TxID: t.id, Value: t.value})
	}
	r.applyCommit(t.id, t.value)
	t.commitAcks[r.me] = true
	replies := msg.GetReplies(t.value.Len())
	for i, n := 0, t.value.Len(); i < n; i++ {
		be := t.value.EntryAt(i)
		_, result, _ := r.sessions.Lookup(t.value.Client, be.Seq)
		replies = append(replies, msg.ClientReply{Seq: be.Seq, Instance: t.id, OK: true, Result: result})
	}
	// One message answers the whole transaction, so the client can
	// retire the batch in one step and refill its window with a full
	// one. A batch message takes over the pooled array (the receiver
	// recycles it); a bare single reply returns it to the pool here.
	m2 := msg.WrapReplies(replies)
	r.ctx.Send(t.value.Client, m2)
	if _, batched := m2.(msg.ClientReplyBatch); batched {
		replies = nil
	}
	msg.PutReplies(replies)
	r.finishTx(t)
}

func (r *Replica) onCommitAck(m msg.TPCCommitAck) {
	t, ok := r.txs[m.TxID]
	if !ok || !t.committed {
		return
	}
	t.commitAcks[m.From] = true
	r.finishTx(t)
}

// finishTx retires the transaction once every replica confirmed the
// commit (the coordinator still processes every commit ack — the paper's
// message count per 2PC agreement includes them).
func (r *Replica) finishTx(t *tx) {
	if len(t.commitAcks) == len(r.replicas) {
		delete(r.txs, t.id)
	}
}

// --- Participant ---

func (r *Replica) onPrepare(from msg.NodeID, m msg.TPCPrepare) {
	if key, blocked := r.blockedOn(m.TxID, m.Value); blocked {
		// Blocked: ack only once the lock is released, stalling the
		// transaction exactly as the paper's blocking analysis describes.
		r.waiting[key] = append(r.waiting[key], pendingPrepare{from: from, m: m})
		return
	}
	r.lockAll(m.TxID, m.Value)
	r.prepared[m.TxID] = m.Value
	r.ctx.Send(from, msg.TPCAck{TxID: m.TxID, From: r.me, OK: true})
}

func (r *Replica) onCommit(from msg.NodeID, m msg.TPCCommit) {
	r.applyCommit(m.TxID, m.Value)
	r.ctx.Send(from, msg.TPCCommitAck{TxID: m.TxID, From: r.me})
}

func (r *Replica) onRollback(m msg.TPCRollback) {
	v, ok := r.prepared[m.TxID]
	if !ok {
		return
	}
	delete(r.prepared, m.TxID)
	r.releaseLocks(m.TxID, v)
}

// applyCommit executes the transaction's commands in batch order —
// atomically, in the sense that the whole lock set is held across all
// of them — and releases the locks on this node's copy. Each command
// dedupes and records its session result individually, so an entry that
// already committed through an earlier retry is not re-executed.
func (r *Replica) applyCommit(txID int64, v msg.Value) {
	r.sessions.ClientAck(v.Client, v.Ack)
	delete(r.prepared, txID)
	for _, sub := range v.Split() {
		if !r.sessions.Seen(sub.Client, sub.Seq) {
			result := r.applier.Apply(sub)
			r.sessions.Done(sub.Client, sub.Seq, txID, result)
			r.history = append(r.history, sub)
			r.commits++
			r.snap.AfterApply()
		}
	}
	if r.cfg.Tracer.Enabled() {
		r.traceMark(trace.StageApply, v)
	}
	r.releaseLocks(txID, v)
}

// traceMark stamps one lifecycle stage for every command v carries
// (internal/trace; only sampled commands record anything).
func (r *Replica) traceMark(stage trace.Stage, v msg.Value) {
	if v.Client == msg.Nobody {
		return
	}
	now := r.ctx.Now()
	for _, be := range v.Entries() {
		r.cfg.Tracer.Mark(v.Client, be.Seq, stage, now)
	}
}

// releaseLocks frees v's whole lock set and serves waiting prepares.
func (r *Replica) releaseLocks(txID int64, v msg.Value) {
	for _, key := range txKeys(v) {
		if holder, locked := r.locks[key]; !locked || holder != txID {
			continue
		}
		delete(r.locks, key)
		r.drainWaiters(key)
	}
}

// drainWaiters retries prepares queued on key until one takes the key's
// lock or the queue empties. A retried prepare is all-or-nothing: if it
// blocks on a *different* key of its set it re-queues there and takes
// nothing, so key stays free and the next waiter gets its turn — queued
// work can never strand behind an unlocked key.
func (r *Replica) drainWaiters(key string) {
	for {
		queue := r.waiting[key]
		if len(queue) == 0 {
			delete(r.waiting, key)
			return
		}
		next := queue[0]
		if len(queue) == 1 {
			delete(r.waiting, key)
		} else {
			r.waiting[key] = queue[1:]
		}
		if next.from == r.me {
			// The coordinator's own deferred local prepare.
			if t, ok := r.txs[next.m.TxID]; ok && !t.committed {
				r.localPrepare(t)
			}
		} else {
			r.onPrepare(next.from, next.m)
		}
		if _, locked := r.locks[key]; locked {
			return // the retried prepare holds key now; its release resumes the queue
		}
	}
}
