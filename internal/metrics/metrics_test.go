package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("zero histogram should report zeros, got count=%d mean=%v p50=%v", h.Count(), h.Mean(), h.Percentile(50))
	}
	for _, d := range []time.Duration{30, 10, 20} {
		h.Record(d * time.Microsecond)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Errorf("Mean = %v, want 20µs", got)
	}
	if got := h.Min(); got != 10*time.Microsecond {
		t.Errorf("Min = %v, want 10µs", got)
	}
	if got := h.Max(); got != 30*time.Microsecond {
		t.Errorf("Max = %v, want 30µs", got)
	}
	if got := h.Median(); got != 20*time.Microsecond {
		t.Errorf("Median = %v, want 20µs", got)
	}
}

func TestHistogramPercentileNearestRank(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i))
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100}, {0, 1},
	}
	for _, tc := range tests {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Record(time.Duration(r))
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	// Recording after a percentile query must re-sort correctly.
	var h Histogram
	h.Record(5)
	h.Record(1)
	if got := h.Median(); got != 1 {
		t.Fatalf("median of {1,5} = %v, want 1", got)
	}
	h.Record(0)
	if got := h.Percentile(1); got != 0 {
		t.Fatalf("p1 after late insert = %v, want 0", got)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	b.Record(20)
	b.Record(30)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 30 {
		t.Fatalf("after merge: count=%d max=%v, want 3/30", a.Count(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("after reset: %+v", a.Summarize())
	}
}

func TestHistogramReservoirStability(t *testing.T) {
	// A million records drawn uniformly from [1µs, 1000µs]. The true
	// p50 and p99 sit at ~500µs and ~990µs; the reservoir's kept set is
	// a uniform sample of HistogramCap durations, so both estimates
	// must hold within a few percent at every checkpoint — and the
	// histogram's memory must stop growing at the cap.
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	const n = 1_000_000
	var sum time.Duration
	for i := 1; i <= n; i++ {
		d := time.Duration(rng.Intn(1000)+1) * time.Microsecond
		h.Record(d)
		sum += d
		if i%100_000 != 0 {
			continue
		}
		const tol = 30 * time.Microsecond // 3% of the value range
		if p50 := h.Percentile(50); p50 < 500*time.Microsecond-tol || p50 > 500*time.Microsecond+tol {
			t.Fatalf("after %d records: p50 = %v, want 500µs ± %v", i, p50, tol)
		}
		if p99 := h.Percentile(99); p99 < 990*time.Microsecond-tol || p99 > 990*time.Microsecond+tol {
			t.Fatalf("after %d records: p99 = %v, want 990µs ± %v", i, p99, tol)
		}
	}
	if got := len(h.samples); got != HistogramCap {
		t.Errorf("kept samples = %d, want exactly the cap %d", got, HistogramCap)
	}
	if got := cap(h.samples); got > 2*HistogramCap {
		t.Errorf("sample capacity = %d — the reservoir should stop growing at the cap", got)
	}
	// The scalar statistics stay exact at any volume.
	if h.Count() != n {
		t.Errorf("Count = %d, want %d", h.Count(), n)
	}
	if got := h.Mean(); got != sum/n {
		t.Errorf("Mean = %v, want exact %v", got, sum/n)
	}
	if h.Min() != 1*time.Microsecond || h.Max() != 1000*time.Microsecond {
		t.Errorf("Min/Max = %v/%v, want exact 1µs/1000µs", h.Min(), h.Max())
	}
}

func TestHistogramReservoirDeterministic(t *testing.T) {
	// Identical record sequences must keep identical reservoirs — the
	// generator is self-seeded, never wall-clock-seeded.
	run := func() Summary {
		var h Histogram
		for i := 0; i < 3*HistogramCap; i++ {
			h.Record(time.Duration(i%997) * time.Microsecond)
		}
		return h.Summarize()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs disagree: %v vs %v", a, b)
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 10 || s.Median != 5*time.Microsecond || s.P95 != 10*time.Microsecond {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(10 * time.Millisecond)
	ts.Record(0)
	ts.Record(5 * time.Millisecond)
	ts.Record(10 * time.Millisecond)
	ts.Record(25 * time.Millisecond)
	ts.Record(-time.Millisecond) // ignored
	got := ts.Buckets()
	want := []int{2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if ts.Total() != 4 {
		t.Errorf("Total = %d, want 4", ts.Total())
	}
	rate := ts.Rate()
	if rate[0] != 200 { // 2 events per 10ms bucket = 200/s
		t.Errorf("Rate[0] = %v, want 200", rate[0])
	}
	if ts.BucketWidth() != 10*time.Millisecond {
		t.Errorf("BucketWidth = %v", ts.BucketWidth())
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bucket width")
		}
	}()
	NewTimeSeries(0)
}

func TestTimeSeriesBucketsIsCopy(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond)
	ts.Record(0)
	b := ts.Buckets()
	b[0] = 99
	if ts.Buckets()[0] != 1 {
		t.Fatal("Buckets must return a copy")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("sent")
	c.Add("sent", 2)
	c.Inc("recv")
	if got := c.Get("sent"); got != 3 {
		t.Errorf("Get(sent) = %d, want 3", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "recv" || labels[1] != "sent" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
	if got := Throughput(500, 500*time.Millisecond); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Errorf("Throughput over zero time = %v, want 0", got)
	}
}

func TestHistogramLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(1_000_000)))
	}
	if h.Percentile(50) > h.Percentile(99) {
		t.Fatal("p50 > p99")
	}
	if h.Min() > h.Percentile(1) || h.Percentile(99) > h.Max() {
		t.Fatal("percentiles outside [min,max]")
	}
}

func TestBatchOccupancy(t *testing.T) {
	var b BatchOccupancy
	if b.Batches() != 0 || b.Commands() != 0 || b.Mean() != 0 {
		t.Fatal("zero occupancy must report zeros")
	}
	b.Record(0) // nonsense sample: ignored
	for _, n := range []int{1, 1, 2, 4, 8, 8, 33} {
		b.Record(n)
	}
	if b.Batches() != 7 || b.Commands() != 57 {
		t.Fatalf("batches=%d commands=%d, want 7/57", b.Batches(), b.Commands())
	}
	if got := b.Mean(); got < 8.1 || got > 8.2 {
		t.Fatalf("Mean = %v, want 57/7", got)
	}
	labels := b.BucketLabels()
	want := map[string]int64{"<=1": 2, "<=2": 1, "<=4": 1, "<=8": 2, "<=16": 0, "<=32": 0, ">32": 1}
	for i, label := range labels {
		if b.Bucket(i) != want[label] {
			t.Errorf("bucket %s = %d, want %d", label, b.Bucket(i), want[label])
		}
	}

	var sum BatchOccupancy
	sum.Record(16)
	sum.Merge(&b)
	if sum.Batches() != 8 || sum.Commands() != 73 {
		t.Fatalf("merged batches=%d commands=%d", sum.Batches(), sum.Commands())
	}
	if sum.Bucket(4) != 1 { // the 16 landed in <=16
		t.Fatalf("merged <=16 bucket = %d", sum.Bucket(4))
	}
}
