// Package metrics provides the measurement primitives used by the
// experiment harness: latency histograms with percentile queries, windowed
// time series (for throughput-over-time plots such as the paper's Figure 11),
// and simple counters.
//
// All types in this package are safe for single-goroutine use; the
// discrete-event simulator is single-threaded, and the real runtime
// aggregates per-client instances, so no locking is required on the hot
// path. Concurrent aggregation helpers take explicit snapshots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// HistogramCap bounds how many samples a Histogram keeps. Up to the cap
// every sample is retained and percentiles are exact; past it the
// histogram switches to reservoir sampling (Algorithm R): each new
// sample replaces a uniformly-chosen kept one with probability cap/n,
// so the kept set stays a uniform sample of everything recorded and
// percentile queries become unbiased estimates whose error shrinks with
// the cap, not with the record count. Count, Mean, Min and Max stay
// exact at any volume. The cap keeps a week-long sweep's histogram at a
// fixed 64 KiB instead of growing (and GC-scanning) one append per op —
// allocation on the measurement path skews the latencies it measures.
const HistogramCap = 1 << 13 // 8192 samples, 64 KiB of durations

// Histogram records duration samples and answers percentile queries.
// The zero value is ready to use.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	n       int64         // total recorded, exact
	sum     time.Duration // exact
	min     time.Duration // exact
	max     time.Duration // exact
	rng     uint64        // xorshift64* state for the reservoir, lazily seeded
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if h.n == 0 || d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
	if len(h.samples) < HistogramCap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	if j := h.randN(h.n); j < HistogramCap {
		h.samples[j] = d
		h.sorted = false
	}
}

// randN draws a deterministic pseudo-random integer in [0, n). The
// generator is self-seeded with a fixed constant so identical record
// sequences keep identical reservoirs — runs reproduce exactly.
func (h *Histogram) randN(n int64) int64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng >> 12
	h.rng ^= h.rng << 25
	h.rng ^= h.rng >> 27
	return int64((h.rng * 2685821657736338717) % uint64(n))
}

// Count reports the number of recorded samples (all of them, not just
// the reservoir's kept subset).
func (h *Histogram) Count() int { return int(h.n) }

// Mean reports the arithmetic mean of the samples, or 0 with no
// samples. The mean is exact regardless of reservoir truncation.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted kept samples — exact below HistogramCap,
// a uniform-reservoir estimate above it. It reports 0 with no samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Median reports the 50th percentile.
func (h *Histogram) Median() time.Duration { return h.Percentile(50) }

// Reset discards all samples (and the reservoir's generator state, so a
// reset histogram replays identically).
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	h.sorted = false
	h.rng = 0
}

// Clone returns an independent copy of h: same exact aggregates, same
// kept samples, same reservoir generator state (so a clone's future
// records replay like the original's would). Snapshot/Merge aggregation
// clones histograms so merging never mutates a live recorder.
func (h *Histogram) Clone() *Histogram {
	out := *h
	out.samples = append([]time.Duration(nil), h.samples...)
	return &out
}

// Merge folds other into h. Count, sum, min and max merge exactly.
// Kept samples append exactly while both sides fit the cap; past it the
// merge treats each of other's kept samples as one reservoir candidate,
// which keeps percentiles representative but is an approximation (each
// kept sample may stand for many recorded ones).
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	for _, s := range other.samples {
		if len(h.samples) < HistogramCap {
			h.samples = append(h.samples, s)
		} else if j := h.randN(h.n + 1); j < HistogramCap {
			h.samples[j] = s
		}
	}
	h.sorted = false
	h.n += other.n
	h.sum += other.sum
}

// Summary is an immutable snapshot of a histogram, convenient for tables.
type Summary struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Summarize captures the usual percentile spread.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Median: h.Median(),
		P95:    h.Percentile(95),
		P99:    h.Percentile(99),
		Min:    h.Min(),
		Max:    h.Max(),
	}
}

// String renders the summary on one line, microsecond precision.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p95=%.1fµs p99=%.1fµs min=%.1fµs max=%.1fµs",
		s.Count, us(s.Mean), us(s.Median), us(s.P95), us(s.P99), us(s.Min), us(s.Max))
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// TimeSeries counts events into fixed-width buckets of (virtual) time,
// reproducing plots like the paper's Figure 11 (proposals per 10 ms bucket).
type TimeSeries struct {
	bucket  time.Duration
	buckets []int
}

// NewTimeSeries makes a series with the given bucket width.
// It panics if the width is not positive; the width is a programming
// constant, never user input.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &TimeSeries{bucket: bucket}
}

// Record counts one event at time t (measured from the start of the run).
func (ts *TimeSeries) Record(t time.Duration) {
	if t < 0 {
		return
	}
	idx := int(t / ts.bucket)
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx]++
}

// BucketWidth reports the configured bucket width.
func (ts *TimeSeries) BucketWidth() time.Duration { return ts.bucket }

// Buckets returns a copy of the per-bucket counts.
func (ts *TimeSeries) Buckets() []int {
	out := make([]int, len(ts.buckets))
	copy(out, ts.buckets)
	return out
}

// Rate converts bucket counts to events/second for each bucket.
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.buckets))
	perSec := float64(time.Second) / float64(ts.bucket)
	for i, c := range ts.buckets {
		out[i] = float64(c) * perSec
	}
	return out
}

// Total reports the sum over all buckets.
func (ts *TimeSeries) Total() int {
	total := 0
	for _, c := range ts.buckets {
		total += c
	}
	return total
}

// BatchOccupancyBuckets are the upper bounds (inclusive) of the
// commands-per-batch histogram; the last bucket is open-ended. The
// bounds are powers of two because batch sizes are: a batcher fills up
// to BatchSize from its pipeline window, so occupancy clusters at 1,
// the window remainder, and the configured cap.
var BatchOccupancyBuckets = []int{1, 2, 4, 8, 16, 32}

// BatchOccupancy tracks how full proposed batches run: how many batches
// were proposed, how many commands they carried in total, and a
// commands-per-batch histogram over BatchOccupancyBuckets. Client-side
// batchers (the KV bridge, workload clients) record one sample per
// proposed batch; the zero value is ready to use.
type BatchOccupancy struct {
	batches  int64
	commands int64
	buckets  [7]int64 // len(BatchOccupancyBuckets) + 1 overflow bucket
}

// Record counts one proposed batch of n commands.
func (b *BatchOccupancy) Record(n int) {
	if n < 1 {
		return
	}
	b.batches++
	b.commands += int64(n)
	for i, bound := range BatchOccupancyBuckets {
		if n <= bound {
			b.buckets[i]++
			return
		}
	}
	b.buckets[len(BatchOccupancyBuckets)]++
}

// Batches reports how many batches were proposed.
func (b *BatchOccupancy) Batches() int64 { return b.batches }

// Commands reports the total commands across all batches.
func (b *BatchOccupancy) Commands() int64 { return b.commands }

// Mean reports the average commands per batch (0 with no batches).
func (b *BatchOccupancy) Mean() float64 {
	if b.batches == 0 {
		return 0
	}
	return float64(b.commands) / float64(b.batches)
}

// Bucket reports the histogram count for bucket i of Labels order.
func (b *BatchOccupancy) Bucket(i int) int64 { return b.buckets[i] }

// BucketLabels names the histogram buckets ("<=1", "<=2", ..., ">32"),
// aligned with Bucket indices.
func (b *BatchOccupancy) BucketLabels() []string {
	out := make([]string, 0, len(b.buckets))
	for _, bound := range BatchOccupancyBuckets {
		out = append(out, fmt.Sprintf("<=%d", bound))
	}
	return append(out, fmt.Sprintf(">%d", BatchOccupancyBuckets[len(BatchOccupancyBuckets)-1]))
}

// Merge folds other's counts into b.
func (b *BatchOccupancy) Merge(other *BatchOccupancy) {
	b.batches += other.batches
	b.commands += other.commands
	for i := range b.buckets {
		b.buckets[i] += other.buckets[i]
	}
}

// WireStats is a snapshot of a TCP transport endpoint's wire-level
// counters: what actually crossed the sockets, how well the writer
// coalesced frames into flushes, and how the connection pool behaved.
// The transport keeps the live counts in atomics and materializes this
// struct on demand; Merge folds per-node snapshots into cluster totals.
type WireStats struct {
	BytesOut   int64 // bytes written to peer sockets (frames + handshakes)
	BytesIn    int64 // bytes read from peer sockets
	FramesOut  int64 // messages encoded and written
	FramesIn   int64 // messages decoded and delivered
	Flushes    int64 // socket write calls (bufio flush-throughs included) — FramesOut/Flushes is the coalescing win
	Dials      int64 // outbound connections established
	Reconnects int64 // dials that replaced a previously-dropped connection
	Dropped    int64 // messages dropped (dead peer, full send queue)
}

// Merge folds other's counts into s.
func (s *WireStats) Merge(other WireStats) {
	s.BytesOut += other.BytesOut
	s.BytesIn += other.BytesIn
	s.FramesOut += other.FramesOut
	s.FramesIn += other.FramesIn
	s.Flushes += other.Flushes
	s.Dials += other.Dials
	s.Reconnects += other.Reconnects
	s.Dropped += other.Dropped
}

// Sub returns the counter deltas since an earlier snapshot — the usual
// way to scope wire accounting to a measured window.
func (s WireStats) Sub(earlier WireStats) WireStats {
	return WireStats{
		BytesOut:   s.BytesOut - earlier.BytesOut,
		BytesIn:    s.BytesIn - earlier.BytesIn,
		FramesOut:  s.FramesOut - earlier.FramesOut,
		FramesIn:   s.FramesIn - earlier.FramesIn,
		Flushes:    s.Flushes - earlier.Flushes,
		Dials:      s.Dials - earlier.Dials,
		Reconnects: s.Reconnects - earlier.Reconnects,
		Dropped:    s.Dropped - earlier.Dropped,
	}
}

// FramesPerFlush reports the send-side coalescing ratio (0 with no
// flushes): how many messages shared one socket write on average —
// bufio flush-throughs for oversized batches count individually, so
// the ratio reflects real syscall savings, not just flush points.
func (s WireStats) FramesPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FramesOut) / float64(s.Flushes)
}

// SnapshotStats is a snapshot of one replica's recovery-subsystem
// counters (internal/snapshot): how often it captured and compacted,
// how much catch-up traffic it served, and whether it ever restored
// itself from a peer's snapshot. KV.SnapshotStats folds the per-replica
// counts into service totals.
type SnapshotStats struct {
	Snapshots         int64 // snapshots captured (periodic and on-demand)
	SnapshotBytes     int64 // encoded bytes across captured snapshots
	EntriesTruncated  int64 // applied log entries dropped by compaction
	CatchupsServed    int64 // catch-up requests answered for peers
	ChunksSent        int64 // snapshot chunks sent while serving
	EntriesStreamed   int64 // decided entries streamed while serving
	CatchupsRequested int64 // catch-up requests sent while recovering
	Restores          int64 // peer snapshots decoded and installed locally
}

// Merge folds other's counts into s.
func (s *SnapshotStats) Merge(other SnapshotStats) {
	s.Snapshots += other.Snapshots
	s.SnapshotBytes += other.SnapshotBytes
	s.EntriesTruncated += other.EntriesTruncated
	s.CatchupsServed += other.CatchupsServed
	s.ChunksSent += other.ChunksSent
	s.EntriesStreamed += other.EntriesStreamed
	s.CatchupsRequested += other.CatchupsRequested
	s.Restores += other.Restores
}

// ReadStats is a snapshot of one replica's read-path counters
// (internal/readpath): how many reads it served without consensus, how
// the read-index rounds batched, and how the lease machinery behaved.
// KV.ReadStats and cluster deployments fold per-replica snapshots into
// service totals.
type ReadStats struct {
	LocalReads    int64 // reads served from the local state machine with no quorum round
	FollowerReads int64 // subset of LocalReads served in follower (stale-bounded) mode
	IndexRounds   int64 // read-index confirmation rounds completed
	IndexReads    int64 // reads served through read-index rounds
	LeaseRenewals int64 // lease rounds completed by an already-holding leader
	LeaseExpiries int64 // leases that lapsed before a renewal landed
	Fallbacks     int64 // lease-path reads demoted to a quorum round (no valid lease)
	Redirects     int64 // reads bounced to another replica (not leader, or catching up)

	// Rounds is the reads-per-round occupancy histogram: one sample per
	// read-index round, counting the reads it served (renewal rounds
	// carrying no reads are not recorded).
	Rounds BatchOccupancy
}

// Merge folds other's counts into s.
func (s *ReadStats) Merge(other ReadStats) {
	s.LocalReads += other.LocalReads
	s.FollowerReads += other.FollowerReads
	s.IndexRounds += other.IndexRounds
	s.IndexReads += other.IndexReads
	s.LeaseRenewals += other.LeaseRenewals
	s.LeaseExpiries += other.LeaseExpiries
	s.Fallbacks += other.Fallbacks
	s.Redirects += other.Redirects
	s.Rounds.Merge(&other.Rounds)
}

// ReadsPerRound reports the average reads served per read-index round
// (0 with no rounds) — the read-path coalescing win.
func (s ReadStats) ReadsPerRound() float64 {
	if s.IndexRounds == 0 {
		return 0
	}
	return float64(s.IndexReads) / float64(s.IndexRounds)
}

// Counter is a labeled monotonic counter set, used for per-node message
// accounting (e.g. messages sent/received by the leader).
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments label by delta.
func (c *Counter) Add(label string, delta int64) { c.counts[label] += delta }

// Inc increments label by one.
func (c *Counter) Inc(label string) { c.Add(label, 1) }

// Get reports the current value for label (0 if never incremented).
func (c *Counter) Get(label string) int64 { return c.counts[label] }

// Labels returns the sorted set of labels seen so far.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Throughput converts an operation count over an elapsed duration into
// operations per second. It reports 0 for a non-positive elapsed time.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
