package consensusinside

// Scenario fuzzing: one seeded adversarial run of a simulated cluster.
// A ScenarioFuzz run builds a deployment on the deterministic sim
// runtime, arms a faultsched schedule generated from the seed (crash
// storms, link cuts, isolation, slowdowns, clock skew, message
// delay/loss), drives recorded client traffic through the fault window
// plus a calm tail, and checks the observed history for per-key
// linearizability (internal/linearize). Everything downstream of the
// (seed, config) pair is deterministic, so any violation is a one-line
// reproduction:
//
//	go test -run 'TestScenarioFuzzSeed$' -seed=N -proto=onepaxos ...
//
// The consensusbench `scenario-fuzz` experiment and the
// TestScenarioFuzzMatrix sweep both drive this entry point.

import (
	"fmt"
	"strings"
	"time"

	"consensusinside/internal/cluster"
	"consensusinside/internal/faultsched"
	"consensusinside/internal/linearize"
	"consensusinside/internal/msg"
	"consensusinside/internal/obs"
	"consensusinside/internal/readpath"
	"consensusinside/internal/simnet"
	"consensusinside/internal/topology"
)

// ScenarioFuzzConfig selects one seeded adversarial run.
type ScenarioFuzzConfig struct {
	// Protocol is the engine under test; Seed drives both the fault
	// schedule and the simulator's RNG.
	Protocol cluster.Protocol
	Seed     int64

	// Shards, SnapshotInterval and ReadMode are the deployment knobs
	// the matrix sweeps (defaults: 1 shard, no snapshots, consensus
	// reads).
	Shards           int
	SnapshotInterval int
	ReadMode         ReadMode

	// BatchAdaptive turns the clients' adaptive batcher on (default off,
	// the static paper behavior) — the matrix fuzzes it because batch
	// re-timing changes which commands share an instance, and instance
	// composition under faults is exactly what the checker audits.
	BatchAdaptive bool

	// Clients and RequestsPerClient bound the recorded history (defaults
	// 2 and 40). All clients share keys — contention is what gives the
	// checker something to disprove.
	Clients           int
	RequestsPerClient int

	// Total is the virtual run length (default 80ms): a short warm
	// start, a 20ms fault window starting at 2ms, and a calm tail long
	// enough for every retry to land. Clients pace themselves with a
	// think time so the recorded traffic spans the fault window instead
	// of finishing before the first fault lands.
	Total time.Duration

	// LeaseDuration overrides the lease under ReadLease (0 = the
	// scenarioFuzzLease default). The revert-guard needs a lease longer
	// than the fault window, so an isolation episode overlaps a lease
	// that is still valid when the challenger commits behind it.
	LeaseDuration time.Duration

	// Profile overrides the default fault storm (nil = the default:
	// crashes, cuts, isolation, slowdowns, light message loss/delay,
	// and — under ReadLease — bounded clock skew).
	Profile *faultsched.Profile

	// LegacyLeaseBug restores the historical lease-serving behavior on
	// every replica (readpath.SetLegacyGranterSelfExemption): granters
	// exempt their own prepares from the lease hold, and holders serve
	// local reads without the applied-frontier gate. The revert-guard
	// uses it to prove the checker catches the historical stale-read
	// hole. Tests only.
	LegacyLeaseBug bool
}

func (c ScenarioFuzzConfig) withDefaults() ScenarioFuzzConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 40
	}
	if c.Total <= 0 {
		c.Total = 80 * time.Millisecond
	}
	return c
}

// ScenarioFuzzResult reports one run's outcome. Violation is non-nil
// when the history (or the replicas' logs) failed the safety check —
// the signal the fuzz matrix exists for; the separate error return of
// ScenarioFuzz covers malformed configurations only.
type ScenarioFuzzResult struct {
	Ops       int // operations recorded (invokes)
	Completed int // operations that returned
	Pending   int // still in flight at the end of the run
	Events    int // fault events in the applied schedule
	Schedule  string
	Violation error
	// EventTail is the cluster event-log ring at run end — fault
	// episodes interleaved with the protocol events (leader changes,
	// lease grants/expiries, recoveries) they provoked, in virtual-time
	// order. Failure reports dump it alongside the history verdict via
	// EventDump.
	EventTail []obs.Event
}

// EventDump renders the event-log tail one line per event, for failure
// reports. Empty tail renders a one-line placeholder so a dump is
// never silently absent.
func (r ScenarioFuzzResult) EventDump() string {
	if len(r.EventTail) == 0 {
		return "  (event log empty)"
	}
	var b strings.Builder
	for _, e := range r.EventTail {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return strings.TrimRight(b.String(), "\n")
}

// scenarioFuzzLease is the lease duration fuzz runs use under
// ReadLease: long enough that isolation episodes (default max duration
// window/4 = 5ms) overlap a valid lease, short enough that runs renew
// several times inside the fault window.
const scenarioFuzzLease = 6 * time.Millisecond

// scenarioFuzzThink paces each client lane: one command per think tick,
// so the recorded traffic stretches across the whole fault window
// (without pacing, the default workload drains in the first ~3ms of
// virtual time and every fault lands on an idle cluster).
const scenarioFuzzThink = time.Millisecond

// defaultFuzzProfile is the storm a seed generates when the config
// does not override it. Skew stays well under the lease safety margin
// (duration/4): bounded drift is the lease's documented operating
// assumption, and a schedule violating it would "find" by-design
// staleness, not bugs.
func defaultFuzzProfile(mode ReadMode) faultsched.Profile {
	p := faultsched.Profile{
		CrashWeight:   3,
		CutWeight:     3,
		IsolateWeight: 2,
		SlowWeight:    2,
		Episodes:      6,
		MaxSlow:       12,
		DropPermille:  30,
		MaxExtraDelay: 200 * time.Microsecond,
	}
	if mode == ReadLease {
		p.SkewWeight = 1
		p.MaxSkew = scenarioFuzzLease / 10
	}
	return p
}

// ScenarioFuzz runs one seeded adversarial scenario and checks the
// recorded history. The returned error covers configuration problems;
// safety verdicts land in ScenarioFuzzResult.Violation.
func ScenarioFuzz(cfg ScenarioFuzzConfig) (ScenarioFuzzResult, error) {
	cfg = cfg.withDefaults()
	rec := linearize.NewRecorder()
	spec := cluster.Spec{
		Protocol:          cfg.Protocol,
		Machine:           topology.Opteron48(),
		Cost:              simnet.ManyCore(),
		Seed:              cfg.Seed,
		Replicas:          3,
		Clients:           cfg.Clients,
		Shards:            cfg.Shards,
		SnapshotInterval:  cfg.SnapshotInterval,
		ReadMode:          readpath.Mode(cfg.ReadMode),
		ReadPercent:       50,
		Window:            2,
		BatchAdaptive:     cfg.BatchAdaptive,
		RequestsPerClient: cfg.RequestsPerClient,
		ThinkTime:         scenarioFuzzThink,
		RetryTimeout:      1500 * time.Microsecond,
		AcceptTimeout:     time.Millisecond,
		TxRetryTimeout:    time.Millisecond,
		SharedKey:         "fz",
		Record:            rec,
	}
	if spec.ReadMode == readpath.Lease {
		spec.LeaseDuration = scenarioFuzzLease
		if cfg.LeaseDuration > 0 {
			spec.LeaseDuration = cfg.LeaseDuration
		}
	}
	c, err := cluster.Build(spec)
	if err != nil {
		return ScenarioFuzzResult{}, err
	}

	if cfg.LegacyLeaseBug {
		for _, s := range c.Servers {
			if rp, ok := s.(interface{ ReadPath() *readpath.Server }); ok {
				rp.ReadPath().SetLegacyGranterSelfExemption(true)
			}
		}
	}

	profile := defaultFuzzProfile(cfg.ReadMode)
	if cfg.Profile != nil {
		profile = *cfg.Profile
	}
	sched := faultsched.Generate(cfg.Seed, faultsched.Options{
		Nodes:   c.ServerIDs,
		Start:   2 * time.Millisecond,
		Window:  20 * time.Millisecond,
		Profile: profile,
	})
	byID := make(map[msg.NodeID]*readpath.Server, len(c.Servers))
	for i, s := range c.Servers {
		if rp, ok := s.(interface{ ReadPath() *readpath.Server }); ok {
			byID[c.ServerIDs[i]] = rp.ReadPath()
		}
	}
	// Faults land in the cluster's event log as they fire, so the ring
	// interleaves each episode with the leader changes, lease expiries
	// and recoveries it provokes — the timeline a violation dump needs.
	sched.ApplyObserved(c.Net, func(id msg.NodeID, off time.Duration) {
		if rp := byID[id]; rp != nil {
			rp.SkewClock(off)
		}
	}, func(ev faultsched.Event) {
		c.Events.Emitf(ev.At, ev.Node, "fault", "%s", ev)
	})

	c.Start()
	c.RunFor(cfg.Total)

	res := ScenarioFuzzResult{
		Events:    len(sched.Events),
		Schedule:  sched.String(),
		EventTail: c.Events.Tail(0),
	}
	ops := rec.Ops()
	res.Ops = len(ops)
	for _, op := range ops {
		if op.Done {
			res.Completed++
		} else {
			res.Pending++
		}
	}
	res.Violation = linearize.Check(ops, linearize.Options{
		// Follower reads are stale-bounded by contract, not
		// linearizable: check read validity and write linearizability.
		WeakReads: spec.ReadMode == readpath.Follower,
		// 2PC locks across the whole store; single-key checking is
		// equivalent for single-key ops but whole-history is the honest
		// granularity for an engine whose atomicity spans keys.
		WholeHistory: cfg.Protocol == cluster.TwoPC,
	})
	if res.Violation == nil {
		res.Violation = c.CheckConsistency()
	}
	return res, nil
}

// ScenarioFuzzProtocols lists the engines the fuzz matrix sweeps — all
// of them.
func ScenarioFuzzProtocols() []cluster.Protocol { return cluster.Protocols() }

// ScenarioFuzzRepro renders the one-line reproduction command for a
// failing (seed, config) pair.
func ScenarioFuzzRepro(cfg ScenarioFuzzConfig) string {
	cfg = cfg.withDefaults()
	repro := fmt.Sprintf("go test -run 'TestScenarioFuzzSeed$' -seed=%d -proto=%s -shards=%d -snap=%d -readmode=%v",
		cfg.Seed, ScenarioFuzzProtoFlag(cfg.Protocol), cfg.Shards, cfg.SnapshotInterval, readpath.Mode(cfg.ReadMode))
	if cfg.BatchAdaptive {
		repro += " -batchadaptive"
	}
	return repro + " ."
}

// ScenarioFuzzProtoFlag maps a protocol to its -proto flag value, the
// lowercase token the repro one-liners use.
func ScenarioFuzzProtoFlag(p cluster.Protocol) string {
	switch p {
	case cluster.OnePaxos:
		return "onepaxos"
	case cluster.MultiPaxos:
		return "multipaxos"
	case cluster.TwoPC:
		return "twopc"
	case cluster.Mencius:
		return "mencius"
	case cluster.BasicPaxos:
		return "basicpaxos"
	}
	return fmt.Sprintf("protocol-%d", int(p))
}

// ScenarioFuzzParseProto is the inverse of ScenarioFuzzProtoFlag; it
// returns an error naming the valid tokens on unknown input.
func ScenarioFuzzParseProto(s string) (cluster.Protocol, error) {
	for _, p := range ScenarioFuzzProtocols() {
		if ScenarioFuzzProtoFlag(p) == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q (valid: onepaxos, multipaxos, twopc, mencius, basicpaxos)", s)
}

// ScenarioFuzzParseReadMode maps a -readmode flag token to a ReadMode.
func ScenarioFuzzParseReadMode(s string) (ReadMode, error) {
	for _, m := range []readpath.Mode{readpath.Consensus, readpath.Lease, readpath.Index, readpath.Follower} {
		if m.String() == s {
			return ReadMode(m), nil
		}
	}
	return 0, fmt.Errorf("unknown read mode %q (valid: consensus, lease, read-index, follower)", s)
}
