package consensusinside

// The read-path sweep: the companion experiment to batchsweep.go and
// codecsweep.go, measuring the read fast path on the real runtimes
// (wall clock). It holds the write path fixed and varies two knobs: the
// read mode (consensus / lease / read-index / follower) and the read
// share of the offered load (the paper's Section 7.5 read workloads;
// 50/90/99% by default). ReadConsensus is exactly the pre-read-path
// system — every Get is a consensus command — so each cell's gain over
// the consensus cell at the same mix is the fast path's win.
//
// The mechanism under test spans the whole stack: Get calls bypass the
// proposer-side batcher into the bridge's read queue, coalesce into
// ReadRequest messages, and are served from a replica's local state
// machine under a leader lease, a read-index confirmation round, or
// follower staleness (internal/readpath; DESIGN.md, "The read path").
//
// cmd/consensusbench exposes this as the read-sweep experiment;
// docs/BENCHMARKS.md is the runbook.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"consensusinside/internal/metrics"
)

// ReadSweepOptions parameterizes ReadSweep. Zero values select the
// defaults noted on each field.
type ReadSweepOptions struct {
	// Transport selects the runtime under test (default InProc).
	Transport TransportKind
	// Replicas is the agreement-group size (default 3).
	Replicas int
	// Pipeline is the bridge window every configuration shares (default
	// DefaultPipeline = 16).
	Pipeline int
	// Modes are the read modes to sweep (default all four, consensus
	// first so every other cell has its baseline in the same run).
	Modes []ReadMode
	// ReadPercents are the read shares of the offered load to sweep, in
	// [0,100] (default 50, 90, 99 — the high-read mixes where the fast
	// path matters).
	ReadPercents []int
	// Ops is the total number of operations (reads + writes) measured
	// per configuration (default 48000).
	Ops int
	// Workers is the number of concurrent callers (default 8x the
	// pipeline window, so both the read queue and the write batcher
	// always have work and read coalescing has something to coalesce).
	Workers int
	// Keys is the size of the prepopulated keyspace the mixed load runs
	// over (default 128).
	Keys int
}

func (o ReadSweepOptions) withDefaults() ReadSweepOptions {
	if o.Transport == 0 {
		o.Transport = InProc
	}
	if o.Replicas == 0 {
		o.Replicas = 3
	}
	if o.Pipeline == 0 {
		o.Pipeline = DefaultPipeline
	}
	if len(o.Modes) == 0 {
		o.Modes = []ReadMode{ReadConsensus, ReadLease, ReadIndex, ReadFollower}
	}
	if len(o.ReadPercents) == 0 {
		o.ReadPercents = []int{50, 90, 99}
	}
	if o.Ops == 0 {
		o.Ops = 48000
	}
	if o.Workers == 0 {
		o.Workers = 8 * o.Pipeline
	}
	if o.Keys == 0 {
		o.Keys = 128
	}
	return o
}

// ReadSweepPoint is one (mode, read%) configuration's result.
type ReadSweepPoint struct {
	Mode        ReadMode
	ReadPercent int
	Ops         int     // operations measured (reads + writes)
	Throughput  float64 // ops per wall-clock second
	ReadP50     time.Duration
	ReadP99     time.Duration
	WriteP50    time.Duration
	WriteP99    time.Duration
	Reads       metrics.ReadStats // server-side fast-path counters
}

// ReadSweep measures mixed-load throughput while sweeping the read mode
// and the read share. Every configuration drives the same number of
// operations from the same worker pool over the same prepopulated
// keyspace; only how reads are served changes. The returned points
// iterate Modes in the outer loop and ReadPercents in the inner one.
func ReadSweep(opts ReadSweepOptions) ([]ReadSweepPoint, error) {
	opts = opts.withDefaults()
	out := make([]ReadSweepPoint, 0, len(opts.Modes)*len(opts.ReadPercents))
	for _, mode := range opts.Modes {
		for _, pct := range opts.ReadPercents {
			if pct < 0 || pct > 100 {
				return nil, fmt.Errorf("consensusinside: read percent %d outside [0,100]", pct)
			}
			pt, err := readSweepOne(opts, mode, pct)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func readSweepOne(opts ReadSweepOptions, mode ReadMode, pct int) (ReadSweepPoint, error) {
	kv, err := StartKV(KVConfig{
		Replicas:  opts.Replicas,
		Transport: opts.Transport,
		Pipeline:  opts.Pipeline,
		ReadMode:  mode,
		// A wall-clock-appropriate lease: the package default (5ms,
		// sized for the sim runtime's virtual clock) would spend its
		// life renewing and lapse under scheduler noise.
		LeaseDuration:  100 * time.Millisecond,
		RequestTimeout: 60 * time.Second,
	})
	if err != nil {
		return ReadSweepPoint{}, err
	}
	defer kv.Close()

	// Prepopulate the keyspace (and warm the leader path, connections,
	// and — under ReadLease — the lease itself) outside the window.
	keys := make([]string, opts.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		if err := kv.Put(keys[i], "v0"); err != nil {
			return ReadSweepPoint{}, fmt.Errorf("consensusinside: prepopulate: %w", err)
		}
	}
	if _, err := kv.Get(keys[0]); err != nil {
		return ReadSweepPoint{}, fmt.Errorf("consensusinside: warm read: %w", err)
	}

	perWorker := opts.Ops / opts.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	total := perWorker * opts.Workers
	errs := make(chan error, opts.Workers)
	readHists := make([]metrics.Histogram, opts.Workers)
	writeHists := make([]metrics.Histogram, opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				key := keys[rng.Intn(len(keys))]
				opStart := time.Now()
				if rng.Intn(100) < pct {
					if _, err := kv.Get(key); err != nil {
						errs <- fmt.Errorf("consensusinside: worker %d get: %w", w, err)
						return
					}
					readHists[w].Record(time.Since(opStart))
				} else {
					if err := kv.Put(key, "v"); err != nil {
						errs <- fmt.Errorf("consensusinside: worker %d put: %w", w, err)
						return
					}
					writeHists[w].Record(time.Since(opStart))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err = <-errs:
		return ReadSweepPoint{}, err
	default:
	}

	var readHist, writeHist metrics.Histogram
	for w := range readHists {
		readHist.Merge(&readHists[w])
		writeHist.Merge(&writeHists[w])
	}
	return ReadSweepPoint{
		Mode:        mode,
		ReadPercent: pct,
		Ops:         total,
		Throughput:  float64(total) / elapsed.Seconds(),
		ReadP50:     readHist.Percentile(50),
		ReadP99:     readHist.Percentile(99),
		WriteP50:    writeHist.Percentile(50),
		WriteP99:    writeHist.Percentile(99),
		Reads:       kv.ReadStats(),
	}, nil
}
