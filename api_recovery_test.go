package consensusinside

// Replica crash/restart tests: the recovery subsystem end to end. A
// replica killed mid-load must rejoin via snapshot + log-suffix
// catch-up on every engine over both transports (the paper handles
// acceptor/leader replacement but assumes the replacement can learn the
// log — this is that assumption, implemented), and with SnapshotInterval
// set the retained log must stay bounded under a sustained run.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"consensusinside/internal/protocol"
	"consensusinside/internal/shard"
)

// TestCrashRestartEdgeCases pins CrashReplica's (and RestartReplica's)
// edge-case semantics on both transports: out-of-range ids and
// double-crash/double-restart are documented errors, and a full
// crash→restart→crash cycle works.
func TestCrashRestartEdgeCases(t *testing.T) {
	for _, tr := range []TransportKind{InProc, TCP} {
		t.Run(tr.String(), func(t *testing.T) {
			kv, err := StartKV(KVConfig{Transport: tr, RequestTimeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer kv.Close()
			if err := kv.Put("k", "v"); err != nil {
				t.Fatal(err)
			}

			steps := []struct {
				name string
				do   func() error
				ok   bool
			}{
				{"crash out of range (negative)", func() error { return kv.CrashReplica(-1) }, false},
				{"crash out of range (past end)", func() error { return kv.CrashReplica(3) }, false},
				{"restart a running replica", func() error { return kv.RestartReplica(1) }, false},
				{"restart out of range", func() error { return kv.RestartReplica(7) }, false},
				{"crash replica 1", func() error { return kv.CrashReplica(1) }, true},
				{"crash replica 1 again", func() error { return kv.CrashReplica(1) }, false},
				{"crash out of range while one is down", func() error { return kv.CrashReplica(99) }, false},
				{"restart replica 1", func() error { return kv.RestartReplica(1) }, true},
				{"restart replica 1 again", func() error { return kv.RestartReplica(1) }, false},
				{"re-crash the restarted replica", func() error { return kv.CrashReplica(1) }, true},
				{"restart it again", func() error { return kv.RestartReplica(1) }, true},
			}
			for _, step := range steps {
				err := step.do()
				if step.ok && err != nil {
					t.Fatalf("%s: unexpected error %v", step.name, err)
				}
				if !step.ok && err == nil {
					t.Fatalf("%s: expected a documented error, got nil", step.name)
				}
			}
			if err := kv.Put("k2", "v2"); err != nil {
				t.Fatalf("put after the crash/restart cycle: %v", err)
			}
		})
	}
}

// TestKVRecoveryMatrix is the acceptance matrix: every engine × both
// transports × two shards. A replica of shard 0 is crashed mid-load and
// restarted; every operation issued through the crash window must still
// commit, the restarted replica must install a peer snapshot
// (Restores >= 1 — the snapshot+suffix path, not blind replay), and the
// shard's pipeline must be fully live again afterwards.
func TestKVRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery matrix is wall-clock heavy")
	}
	for _, p := range Protocols() {
		for _, tr := range []TransportKind{InProc, TCP} {
			p, tr := p, tr
			t.Run(fmt.Sprintf("%v/%v", p, tr), func(t *testing.T) {
				t.Parallel()
				runRecoveryCell(t, p, tr)
			})
		}
	}
}

func runRecoveryCell(t *testing.T, p Protocol, tr TransportKind) {
	const shards = 2
	kv, err := StartKV(KVConfig{
		Protocol:         p,
		Transport:        tr,
		Shards:           shards,
		SnapshotInterval: 8,
		Pipeline:         8,
		AcceptTimeout:    50 * time.Millisecond,
		RequestTimeout:   90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	// Keys pinned per shard so shard 0 takes the fault and shard 1
	// proves isolation.
	keyOn := func(sh, i int) string { return shard.KeyFor(fmt.Sprintf("rec%d-%d", sh, i), sh, shards) }

	// Seed enough commits on both shards that shard 0's replicas have
	// snapshotted and compacted (interval 8) before the fault.
	for i := 0; i < 40; i++ {
		for sh := 0; sh < shards; sh++ {
			if err := kv.Put(keyOn(sh, i), fmt.Sprintf("seed%d", i)); err != nil {
				t.Fatalf("seed put: %v", err)
			}
		}
	}
	if s := kv.SnapshotStats(); s.Snapshots == 0 {
		t.Fatalf("no snapshots after seeding: %+v", s)
	}

	// Crash replica 1 of shard 0 (a non-coordinator follower: blocking
	// engines stall shard 0 until it returns; quorum engines keep going).
	const victim = 1
	if err := kv.CrashReplica(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}

	// Load through the crash window. Blocking engines (2PC; Mencius
	// applies stall behind the dead owner's instances) park these until
	// the restart, so they run in the background with a long timeout.
	const crashOps = 12
	var wg sync.WaitGroup
	errs := make(chan error, 2*crashOps)
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := 0; i < crashOps; i++ {
				if err := kv.Put(keyOn(sh, 100+i), fmt.Sprintf("crash%d", i)); err != nil {
					errs <- fmt.Errorf("shard %d op %d during crash window: %w", sh, i, err)
					return
				}
			}
		}(sh)
	}

	time.Sleep(300 * time.Millisecond)
	if err := kv.RestartReplica(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The restarted replica must have installed a peer snapshot.
	deadline := time.Now().Add(20 * time.Second)
	for kv.SnapshotStats().Restores == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never restored a snapshot: %+v", kv.SnapshotStats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Commit flow is fully live again: concurrent bursts on the faulted
	// shard commit, widen its pipeline window past the closed loop
	// (fast engines may finish ops before the goroutines overlap, so
	// burst until the cumulative MaxInFlight shows real pipelining),
	// and reads see the latest writes.
	for attempt := 0; kv.MaxInFlight() < 2; attempt++ {
		if attempt == 50 {
			t.Fatalf("pipeline never widened (max in-flight %d) — commit flow did not recover", kv.MaxInFlight())
		}
		var burst sync.WaitGroup
		burstErrs := make(chan error, 16)
		for i := 0; i < 16; i++ {
			burst.Add(1)
			go func(i int) {
				defer burst.Done()
				if err := kv.Put(keyOn(0, 200+i), fmt.Sprintf("post%d", i)); err != nil {
					burstErrs <- fmt.Errorf("post-restart put %d: %w", i, err)
				}
			}(i)
		}
		burst.Wait()
		close(burstErrs)
		for err := range burstErrs {
			t.Fatal(err)
		}
	}
	for sh := 0; sh < shards; sh++ {
		got, err := kv.Get(keyOn(sh, 100+crashOps-1))
		if err != nil {
			t.Fatalf("post-restart get on shard %d: %v", sh, err)
		}
		if want := fmt.Sprintf("crash%d", crashOps-1); got != want {
			t.Fatalf("shard %d: crash-window write lost: got %q, want %q", sh, got, want)
		}
	}
	if got, err := kv.Get(keyOn(0, 215)); err != nil || got != "post15" {
		t.Fatalf("post-restart read = %q, %v; want post15", got, err)
	}
}

// TestLogBoundedUnderSustainedLoad is the memory-bound acceptance: with
// SnapshotInterval set, a 100k-op sustained run must keep every
// replica's retained log entries bounded near the interval, not the op
// count, and compaction must have truncated the difference.
func TestLogBoundedUnderSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-op sustained run")
	}
	const (
		interval = 64
		ops      = 100_000
	)
	kv, err := StartKV(KVConfig{
		Transport:        InProc,
		SnapshotInterval: interval,
		BatchSize:        8,
		RequestTimeout:   90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	if _, _, err := runPutLoad(kv, ops, 64); err != nil {
		t.Fatal(err)
	}
	s := kv.SnapshotStats()
	// Quiesce the replicas (Close is idempotent) so the log inspection
	// below cannot race trailing learner applies.
	kv.Close()

	// The retained suffix trails the snapshot by at most one interval
	// plus the entries applied since the last capture: 2x interval, with
	// headroom for in-flight application.
	const bound = 3 * interval
	for i, eng := range kv.shards[0].engines {
		exp, ok := eng.(protocol.LogExposer)
		if !ok {
			t.Fatalf("engine %d does not expose a log", i)
		}
		log := exp.Log()
		// Sanity floor: ~ops/batch instances, minus the trailing applies
		// Close may have cut off.
		if log.Applied() < ops/10 {
			t.Fatalf("replica %d applied only %d instances", i, log.Applied())
		}
		if got := log.Retained(); got > bound {
			t.Errorf("replica %d retains %d entries after %d applied (floor %d) — want <= %d",
				i, got, log.Applied(), log.Floor(), bound)
		}
	}
	if s.Snapshots == 0 || s.EntriesTruncated == 0 {
		t.Fatalf("no compaction under sustained load: %+v", s)
	}
	t.Logf("sustained run: %d ops, stats %+v", ops, s)
}
