package consensusinside

// The stats-concurrency audit, pinned. Every stats family the unified
// registry absorbs (WireStats, ReadStats, SnapshotStats, batch
// occupancy, the tracer, the event log) is produced by engine or
// transport goroutines and snapshotted from arbitrary caller
// goroutines, possibly while RestartReplica is swapping the very slots
// the readers iterate. The synchronization contract:
//
//   - WireStats and SnapshotStats producers keep per-field atomics —
//     a snapshot tears across *fields* (it is not a consistent cut)
//     but never within one, and no update is lost;
//   - ReadStats is guarded by the read-path server's mutex and copied
//     out by value (its occupancy histogram is a fixed array, so the
//     copy shares nothing);
//   - the per-replica slots (engines, TCP nodes) are guarded by the
//     shard mutex against RestartReplica's swap;
//   - tracer and event log are internally synchronized.
//
// This test drives all of it at once under load — snapshot readers,
// writers, a crash/restart cycle, the tracer sampling, and the debug
// HTTP surface — and exists to run under -race: any torn read or lost
// lock on these paths is a test failure even when the values happen to
// look sane. It also asserts the cheap monotonic coherence the
// families guarantee individually.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestObsSnapshotRace(t *testing.T) {
	// Both transports: each wires the tracer into its send path
	// differently (the InProc cluster reads it from node goroutines
	// started at construction — exactly the publication this test
	// once caught unsynchronized).
	for _, tr := range []TransportKind{InProc, TCP} {
		t.Run(tr.String(), func(t *testing.T) { obsSnapshotRace(t, tr) })
	}
}

func obsSnapshotRace(t *testing.T, transport TransportKind) {
	kv, err := StartKV(KVConfig{
		Transport:        transport,
		Pipeline:         8,
		BatchSize:        8,
		TraceInterval:    16,
		SnapshotInterval: 64,
		RequestTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("warm", "v"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var readers sync.WaitGroup

	// Writers: keep every producer hot (wire frames, batches, trace
	// spans, snapshot captures). Op-count-bound, not time-bound: the
	// race detector slows the wire enough that a wall-clock window can
	// finish before any seq hits the sampling interval.
	const opsPerWriter = 400
	writeErr := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b", "c", "d"}[w]
			for i := 0; i < opsPerWriter; i++ {
				if err := kv.Put(key, "v"); err != nil {
					writeErr <- err
					return
				}
			}
		}(w)
	}

	// Snapshot readers: every aggregation surface, concurrently.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				snap := kv.Obs()
				if c := snap.Counters["trace.started"]; c < snap.Counters["trace.finished"] {
					t.Errorf("trace.started %d < trace.finished %d", c, snap.Counters["trace.finished"])
					return
				}
				_ = kv.WireStats()
				rs := kv.ReadStats()
				_ = rs.ReadsPerRound()
				_ = kv.SnapshotStats()
				occ := kv.BatchStats()
				if occ.Commands() < occ.Batches() {
					t.Errorf("batch occupancy: %d commands < %d batches", occ.Commands(), occ.Batches())
					return
				}
				_ = kv.Trace()
				_ = kv.Events().Tail(8)
				// Yield between sweeps: three busy readers can starve
				// the writers on a single-CPU runner.
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// One replica slot churns underneath the readers while the
	// writers are still going.
	for i := 0; i < 2; i++ {
		if err := kv.CrashReplica(2); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		if err := kv.RestartReplica(2); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	wg.Wait() // writers drain their op budget
	stop.Store(true)
	readers.Wait()
	select {
	case err := <-writeErr:
		t.Fatal(err)
	default:
	}

	// Coherence across the final quiescent snapshot: all spans begun
	// were finished or are still pending in the active map, and the
	// batch counters moved.
	snap := kv.Trace()
	if snap.Started < snap.Finished {
		t.Fatalf("tracer accounting: started %d < finished %d", snap.Started, snap.Finished)
	}
	if snap.Finished == 0 {
		t.Fatal("tracer sampled nothing under load")
	}
	finalOcc := kv.BatchStats()
	if finalOcc.Batches() == 0 {
		t.Fatal("batch occupancy recorded nothing")
	}
}
