// kvstore: the sharded replicated map over real TCP sockets, with a
// whole-group crash mid-run — the paper's non-blocking story end to
// end, times two groups.
//
// Two independent consensus groups of three replicas each listen on
// loopback TCP ports; every key hash-routes to one group. Concurrent
// writers load the store across both groups; then every replica of
// group 0 is killed. Keys of group 1 keep committing — sharding makes
// the groups independent fault domains — while 1Paxos inside each
// group keeps single-replica failures invisible (compare 2PC, where
// any unresponsive replica blocks every update forever — Section 2.2).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"consensusinside"
)

func main() {
	kv, err := consensusinside.StartKV(consensusinside.KVConfig{
		Replicas:       3,
		Shards:         2,
		BatchSize:      8, // up to 8 commands per consensus instance
		Transport:      consensusinside.TCP,
		RequestTimeout: 30 * time.Second,
		AcceptTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer kv.Close()
	fmt.Printf("%d groups x 3 replicas on loopback TCP, 1Paxos, wire-codec messages\n", kv.Shards())

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := kv.Put(key, fmt.Sprintf("v%d", i)); err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Println("30 writes committed, hash-partitioned across both groups")

	// Kill every replica of group 0 (global replica ids 0..2).
	for id := 0; id < 3; id++ {
		if err := kv.CrashReplica(id); err != nil {
			log.Fatalf("crash replica %d: %v", id, err)
		}
	}
	fmt.Println("group 0 wiped out — group 1 is an independent fault domain and keeps going")

	// Find a key that routes to the surviving group and write through it.
	aliveKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("after-crash-%d", i)
		if kv.ShardFor(k) == 1 {
			aliveKey = k
			break
		}
	}
	start := time.Now()
	if err := kv.Put(aliveKey, "still-alive"); err != nil {
		log.Fatalf("put after crash: %v", err)
	}
	fmt.Printf("first write after the crash committed in %v (key %q, group 1)\n",
		time.Since(start).Round(time.Millisecond), aliveKey)

	// Pre-crash state on the surviving group is still readable: sample
	// the first pre-crash key that routes to group 1.
	sampled := false
	for i := 0; i < 30 && !sampled; i++ {
		key := fmt.Sprintf("w%d-%d", i/10, i%10)
		if kv.ShardFor(key) != 1 {
			continue
		}
		v, err := kv.Get(key)
		if err != nil {
			log.Fatalf("read back %s: %v", key, err)
		}
		fmt.Printf("pre-crash state preserved: %s = %q\n", key, v)
		sampled = true
	}
	if !sampled {
		fmt.Println("(every pre-crash key happened to hash to group 0 — nothing to sample)")
	}
	fmt.Println("done")
}
