// kvstore: the replicated map over real TCP sockets, with a leader crash
// mid-run — the paper's non-blocking story end to end.
//
// Five replicas listen on loopback TCP ports; concurrent writers load the
// store; the initial leader's process is then killed. Because 1Paxos
// needs only the active acceptor and a PaxosUtility majority, another
// replica takes over and the writers continue (compare 2PC, where any
// unresponsive replica blocks every update forever — Section 2.2).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	consensusinside "consensusinside"
)

func main() {
	kv, err := consensusinside.StartKV(consensusinside.KVConfig{
		Replicas:       5,
		Transport:      consensusinside.TCP,
		RequestTimeout: 30 * time.Second,
		AcceptTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer kv.Close()
	fmt.Println("5 replicas on loopback TCP, 1Paxos, gob-encoded messages")

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := kv.Put(key, fmt.Sprintf("v%d", i)); err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Println("30 writes committed under the initial leader (replica 0)")

	if err := kv.CrashReplica(0); err != nil {
		log.Fatalf("crash replica 0: %v", err)
	}
	fmt.Println("replica 0 (the leader) killed — client rotates, a backup takes over")

	start := time.Now()
	if err := kv.Put("after-crash", "still-alive"); err != nil {
		log.Fatalf("put after crash: %v", err)
	}
	fmt.Printf("first write after the crash committed in %v\n", time.Since(start).Round(time.Millisecond))

	v, err := kv.Get("w2-9")
	if err != nil {
		log.Fatalf("read back: %v", err)
	}
	fmt.Printf("pre-crash state preserved: w2-9 = %q\n", v)
	fmt.Println("done")
}
