// debugserver: a live KV with the /debug introspection surface
// attached — the runnable counterpart of DESIGN.md's observability
// section, and the server the CI debug-endpoint smoke curls.
//
// It starts a 3-replica group with 1-in-8 command tracing, drives a
// light background workload so every surface has data, and serves:
//
//	/debug/metrics  unified registry snapshot (counters, gauges,
//	                histogram summaries, flat dump, event tail)
//	/debug/trace    sampled command lifecycles with per-stage latency
//	/debug/events   the rare-event timeline
//	/debug/pprof/   net/http/pprof, live CPU/heap profiling
//
//	go run ./examples/debugserver              # serve on 127.0.0.1:7070
//	go run ./examples/debugserver -for 30s     # exit cleanly after 30s (CI)
//	curl -s localhost:7070/debug/metrics | head
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"consensusinside"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "debug listener address (use :0 for an ephemeral port)")
	runFor := flag.Duration("for", 0, "serve for this long then exit 0 (0 = forever)")
	interval := flag.Int("trace", 8, "trace sampling interval (0 = off)")
	flag.Parse()

	kv, err := consensusinside.StartKV(consensusinside.KVConfig{
		Replicas:       3,
		BatchSize:      8,
		TraceInterval:  *interval,
		DebugAddr:      *addr,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer kv.Close()
	fmt.Printf("debug surface on http://%s  (metrics, trace, events, pprof)\n", kv.DebugAddr())

	// A gentle background workload so the surfaces show live data:
	// a write and a read every few milliseconds.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			key := fmt.Sprintf("k%d", i%16)
			if err := kv.Put(key, fmt.Sprintf("v%d", i)); err != nil {
				log.Printf("put: %v", err)
				return
			}
			if _, err := kv.Get(key); err != nil {
				log.Printf("get: %v", err)
				return
			}
		}
	}()

	if *runFor > 0 {
		time.Sleep(*runFor)
		close(stop)
		return
	}
	select {}
}
