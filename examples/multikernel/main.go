// multikernel: the Barrelfish scenario that motivates the paper.
//
// A multikernel OS replicates kernel state (capability tables,
// configuration) across cores and keeps the replicas consistent through
// message-passing agreement. Barrelfish uses a 2PC-like blocking
// protocol; the paper's point is that one loaded core then stalls every
// kernel update. This example replays that story on the simulated 8-core
// machine: both protocols replicate "kernel state" updates from 5 client
// cores, core 0 gets loaded with CPU hogs mid-run, and the per-10ms
// update rates before and after tell the tale (Sections 2.2 and 7.6).
//
//	go run ./examples/multikernel
package main

import (
	"fmt"
	"log"
	"time"

	consensusinside "consensusinside"
)

func run(p consensusinside.Protocol) (before, after float64) {
	c, err := consensusinside.NewSimCluster(consensusinside.SimSpec{
		Protocol:     p,
		Machine:      consensusinside.Machine8(),
		Cost:         consensusinside.CostsManyCoreSlow(),
		Seed:         1,
		Replicas:     3,
		Clients:      5,
		SeriesBucket: 10 * time.Millisecond,
		RetryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("build cluster: %v", err)
	}
	c.Start()
	c.SlowAt(100*time.Millisecond, 0, consensusinside.CPUHogSlowdown)
	c.RunFor(400 * time.Millisecond)

	buckets := c.SeriesSum()
	perSec := float64(time.Second / (10 * time.Millisecond))
	n := 0
	for i := 1; i < 10 && i < len(buckets); i++ { // 10ms..100ms: pre-fault
		before += float64(buckets[i]) * perSec
		n++
	}
	if n > 0 {
		before /= float64(n)
	}
	n = 0
	for i := 30; i < len(buckets); i++ { // 300ms..400ms: post-fault steady
		after += float64(buckets[i]) * perSec
		n++
	}
	if n > 0 {
		after /= float64(n)
	}
	return before, after
}

func main() {
	fmt.Println("multikernel state replication on an 8-core machine;")
	fmt.Println("core 0 (coordinator/leader) loaded with 8 CPU hogs at t=100ms")
	fmt.Println()
	fmt.Printf("%-12s %18s %18s\n", "protocol", "updates/s before", "updates/s after")
	for _, p := range []consensusinside.Protocol{consensusinside.TwoPC, consensusinside.OnePaxos} {
		before, after := run(p)
		fmt.Printf("%-12s %15.0f %18.0f\n", p, before, after)
	}
	fmt.Println()
	fmt.Println("2PC (Barrelfish's agreement): the loaded core is required for every")
	fmt.Println("update, so kernel-state replication collapses. 1Paxos: the clients")
	fmt.Println("redirect, a backup takes leadership, throughput recovers in full.")
}
