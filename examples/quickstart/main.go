// Quickstart: a linearizable replicated map, protocol of your choice.
//
// Three replicas run in-process, connected by lock-free SPSC slot queues
// (the paper's QC-libtask design); every Put and Get is a consensus
// command applied by all replicas in log order. The same KV runs over
// any registered agreement engine — the KVConfig.Protocol knob — and
// over TCP by setting Transport; this demo drives the paper's 1Paxos
// first, then replays a write under every other engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	consensusinside "consensusinside"
)

func main() {
	kv, err := consensusinside.StartKV(consensusinside.KVConfig{
		Protocol: consensusinside.OnePaxos,
		Replicas: 3,
	})
	if err != nil {
		log.Fatalf("start replicated KV: %v", err)
	}
	defer kv.Close()

	fmt.Println("replicated KV up: 3 replicas, 1Paxos, in-process message passing")

	pairs := map[string]string{
		"paper":    "Consensus Inside",
		"venue":    "Middleware 2014",
		"protocol": "1Paxos",
	}
	for k, v := range pairs {
		if err := kv.Put(k, v); err != nil {
			log.Fatalf("put %q: %v", k, err)
		}
		fmt.Printf("  put %-8s = %q\n", k, v)
	}

	for _, k := range []string{"paper", "venue", "protocol"} {
		v, err := kv.Get(k)
		if err != nil {
			log.Fatalf("get %q: %v", k, err)
		}
		fmt.Printf("  get %-8s = %q (linearizable read through consensus)\n", k, v)
	}

	fmt.Println("\nsame service, every other registered engine:")
	for _, p := range consensusinside.Protocols() {
		if p == consensusinside.OnePaxos {
			continue
		}
		alt, err := consensusinside.StartKV(consensusinside.KVConfig{Protocol: p})
		if err != nil {
			log.Fatalf("start %v: %v", p, err)
		}
		if err := alt.Put("engine", p.String()); err != nil {
			log.Fatalf("%v put: %v", p, err)
		}
		v, err := alt.Get("engine")
		alt.Close()
		if err != nil {
			log.Fatalf("%v get: %v", p, err)
		}
		fmt.Printf("  %-12s put/get round trip ok (%q)\n", p, v)
	}
	fmt.Println("done")
}
