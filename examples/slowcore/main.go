// slowcore: an ASCII rendering of the paper's Figure 11.
//
// Five clients drive a 3-replica 1Paxos group on the simulated 8-core
// machine. At t=100ms the leader's core is loaded with CPU hogs. The
// plot shows commits per 10ms bucket: a steady line, a drop to zero for
// the client-detection + leader-change window, and recovery to the
// original throughput under the new leader.
//
//	go run ./examples/slowcore
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	consensusinside "consensusinside"
)

func main() {
	c, err := consensusinside.NewSimCluster(consensusinside.SimSpec{
		Protocol:     consensusinside.OnePaxos,
		Machine:      consensusinside.Machine8(),
		Cost:         consensusinside.CostsManyCoreSlow(),
		Seed:         1,
		Replicas:     3,
		Clients:      5,
		SeriesBucket: 10 * time.Millisecond,
		RetryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("build cluster: %v", err)
	}
	c.Start()
	c.SlowAt(100*time.Millisecond, 0, consensusinside.CPUHogSlowdown)
	c.RunFor(400 * time.Millisecond)

	buckets := c.SeriesSum()
	maxB := 1
	for _, b := range buckets {
		if b > maxB {
			maxB = b
		}
	}
	fmt.Println("1Paxos commits per 10ms bucket (leader slowed at t=100ms):")
	fmt.Println()
	const width = 50
	for i, b := range buckets {
		bar := strings.Repeat("#", b*width/maxB)
		marker := " "
		if i == 10 {
			marker = "<- 8 CPU hogs land on the leader's core"
		}
		fmt.Printf("%4dms |%-*s| %4d %s\n", i*10, width, bar, b, marker)
	}

	// Quantify the recovery.
	var leaders []int
	for i, s := range c.Servers {
		type leaderer interface{ IsLeader() bool }
		if l, ok := s.(leaderer); ok && l.IsLeader() {
			leaders = append(leaders, i)
		}
	}
	fmt.Printf("\nleader after recovery: replica %v (was replica 0)\n", leaders)
	fmt.Println("the gap is the clients' detection timeout plus one PaxosUtility")
	fmt.Println("LeaderChange round; throughput returns to the pre-fault level,")
	fmt.Println("exactly the shape of the paper's Figure 11.")
}
