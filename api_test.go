package consensusinside

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestKVInProc(t *testing.T) {
	kv, err := StartKV(KVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("lang", "go"); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get("lang")
	if err != nil {
		t.Fatal(err)
	}
	if got != "go" {
		t.Fatalf("Get = %q, want go", got)
	}
	if got, err := kv.Get("missing"); err != nil || got != "" {
		t.Fatalf("missing Get = %q,%v", got, err)
	}
}

func TestKVSequentialOps(t *testing.T) {
	kv, err := StartKV(KVConfig{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i%5)
		if err := kv.Put(key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	got, err := kv.Get("k4")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v49" {
		t.Fatalf("Get = %q, want v49 (last writer wins)", got)
	}
}

// TestKVReadTimeoutBoundsQueuedReads pins the read lane's deadline
// semantics: a fast-path Get's timeout runs from when the bridge first
// sees it, even while the 2-deep read window is saturated against an
// unresponsive cluster. A first wave of Gets fills the window (all
// replicas are crashed, so its batches never retire); a second wave
// then pools in the read queue, where pre-stamping it would wait
// deadline-less until the first wave expires and only then start its
// own timeout — roughly doubling the caller's wait. Every second-wave
// Get must fail within its own RequestTimeout plus scan-tick slack.
func TestKVReadTimeoutBoundsQueuedReads(t *testing.T) {
	const timeout = 400 * time.Millisecond
	kv, err := StartKV(KVConfig{
		Replicas:       3,
		ReadMode:       ReadIndex,
		RequestTimeout: timeout,
		AcceptTimeout:  10 * time.Millisecond, // read scan tick = 2x this
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := kv.CrashReplica(i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kv.Get("k") // first wave: saturates the read window, expires at ~timeout
		}()
	}
	time.Sleep(timeout / 2) // the second wave arrives mid-flight of the first
	type res struct {
		err     error
		elapsed time.Duration
	}
	results := make(chan res, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := kv.Get("k")
			results <- res{err, time.Since(start)}
		}()
	}
	wg.Wait()
	close(results)
	limit := timeout + 150*time.Millisecond
	for r := range results {
		if r.err == nil {
			t.Error("Get against a fully-crashed cluster succeeded")
		}
		if r.elapsed > limit {
			t.Fatalf("queued Get took %v to fail, want <= %v (its deadline must run from enqueue, not from window admission)",
				r.elapsed, limit)
		}
	}
}

func TestKVConcurrentClients(t *testing.T) {
	kv, err := StartKV(KVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := kv.Put(fmt.Sprintf("g%d-k%d", g, i), "v"); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for g := 0; g < 4; g++ {
		if v, err := kv.Get(fmt.Sprintf("g%d-k9", g)); err != nil || v != "v" {
			t.Fatalf("g%d: %q %v", g, v, err)
		}
	}
}

func TestKVOverTCP(t *testing.T) {
	kv, err := StartKV(KVConfig{Transport: TCP, RequestTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Fatalf("Get = %q, want 1", got)
	}
}

func TestKVSurvivesLeaderCrashOverTCP(t *testing.T) {
	kv, err := StartKV(KVConfig{
		Transport:      TCP,
		RequestTimeout: 30 * time.Second,
		AcceptTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("before", "crash"); err != nil {
		t.Fatal(err)
	}
	// Kill the initial leader (replica 0): the bridge rotates to another
	// replica, which takes over leadership.
	if err := kv.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("after", "crash"); err != nil {
		t.Fatalf("put after leader crash: %v", err)
	}
	got, err := kv.Get("before")
	if err != nil {
		t.Fatal(err)
	}
	if got != "crash" {
		t.Fatalf("state lost across failover: %q", got)
	}
}

func TestKVConfigValidation(t *testing.T) {
	if _, err := StartKV(KVConfig{Replicas: 2}); err == nil {
		t.Fatal("2 replicas must be rejected")
	}
	if _, err := StartKV(KVConfig{Transport: TransportKind(99)}); err == nil {
		t.Fatal("unknown transport must be rejected")
	}
	if _, err := StartKV(KVConfig{Protocol: Protocol(99)}); err == nil {
		t.Fatal("unknown protocol must be rejected")
	}
	if _, err := StartKV(KVConfig{Pipeline: 1 << 20}); err == nil {
		t.Fatal("a pipeline deeper than the session window must be rejected")
	}
	if _, err := StartKV(KVConfig{ReadMode: ReadMode(99)}); err == nil {
		t.Fatal("unknown read mode must be rejected")
	}
	if _, err := StartKV(KVConfig{LeaseDuration: -time.Second}); err == nil {
		t.Fatal("negative lease duration must be rejected")
	}
}

func TestSimFacade(t *testing.T) {
	c, err := NewSimCluster(SimSpec{
		Protocol: OnePaxos,
		Machine:  Machine48(),
		Cost:     CostsManyCore(),
		Seed:     1,
		Replicas: 3,
		Clients:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunFor(5 * time.Millisecond)
	st := c.ClientStats()
	if st.Completed == 0 {
		t.Fatal("no commits through the facade")
	}
	if Machine8().Cores() != 8 {
		t.Fatal("Machine8 wrong")
	}
	if CostsLAN().Send <= CostsManyCore().Send {
		t.Fatal("LAN transmission must exceed many-core transmission")
	}
}
